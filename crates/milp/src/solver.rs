//! Best-bound-first branch-and-bound.

use crate::model::MilpModel;
use crate::MilpError;
use certnn_lp::{
    Deadline, Degradation, LpError, LpModel, LpStatus, Sense, Simplex, SimplexOptions, VarId,
    WarmSolve, WarmStart,
};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Cached `milp.*` observability counters (node lifecycle). Hot-loop
/// totals are kept in plain locals and flushed in one bulk add per solve.
struct MilpMetrics {
    solves: certnn_obs::Counter,
    nodes: certnn_obs::Counter,
    incumbent_updates: certnn_obs::Counter,
    dropped_subtrees: certnn_obs::Counter,
}

fn milp_metrics() -> &'static MilpMetrics {
    static M: OnceLock<MilpMetrics> = OnceLock::new();
    M.get_or_init(|| MilpMetrics {
        solves: certnn_obs::counter("milp.solves"),
        nodes: certnn_obs::counter("milp.nodes"),
        incumbent_updates: certnn_obs::counter("milp.incumbent_updates"),
        dropped_subtrees: certnn_obs::counter("milp.dropped_subtrees"),
    })
}

/// Variable-selection rule for branching.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BranchRule {
    /// Branch on the variable closest to half-integrality.
    #[default]
    MostFractional,
    /// Branch on the variable with the best observed objective
    /// degradation history (product of up/down pseudo-costs), falling
    /// back to fractionality until history accumulates.
    PseudoCost,
}

/// Tuning knobs and termination criteria for [`BranchAndBound`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MilpOptions {
    /// Wall-clock limit; `None` means unlimited.
    pub time_limit: Option<Duration>,
    /// Explored-node limit; `None` means unlimited.
    pub node_limit: Option<usize>,
    /// Absolute optimality gap at which the search stops.
    pub abs_gap: f64,
    /// Relative optimality gap (fraction of the incumbent) at which the
    /// search stops.
    pub rel_gap: f64,
    /// Integrality tolerance.
    pub int_tol: f64,
    /// Stop as soon as an incumbent at least this good (in the model's
    /// sense) is found. This is the "find a counterexample" fast path of a
    /// decision query.
    pub target_objective: Option<f64>,
    /// Stop as soon as the global bound proves the optimum is strictly
    /// worse than this value (below it when maximising, above it when
    /// minimising). This is the "property proven" fast path of a decision
    /// query.
    pub bound_cutoff: Option<f64>,
    /// Objective value of a feasible point known from outside the solve
    /// (e.g. the cross-thread incumbent of the neuron branch-and-bound).
    ///
    /// This is a *pruning-only* external bound: it prunes and closes the gap
    /// exactly like an incumbent, but it is never reported as a feasible
    /// point of this model — if the search stops without finding its own
    /// integral point, `x` and `objective` stay `None`, and callers must
    /// treat `best_bound`/`Optimal` as "no better solution than the external
    /// value exists", not as a feasibility claim. The value must be
    /// achievable *somewhere in the caller's search space* — an overestimate
    /// makes pruning unsound. Callers seeding this from an incumbent held
    /// elsewhere must verify the incumbent actually attains the value before
    /// passing it down.
    pub initial_bound: Option<f64>,
    /// Run the rounding dive heuristic for early incumbents.
    pub dive_heuristic: bool,
    /// Branching variable selection.
    pub branch_rule: BranchRule,
    /// Warm-start each node's LP from its parent's optimal basis (dual
    /// simplex re-solve), falling back to a cold solve on singular or
    /// stale bases. Identical verdicts, fewer pivots.
    pub warm_start: bool,
    /// Options for the underlying LP solves.
    pub lp: SimplexOptions,
}

impl Default for MilpOptions {
    fn default() -> Self {
        Self {
            time_limit: None,
            node_limit: None,
            abs_gap: 1e-6,
            rel_gap: 1e-6,
            int_tol: 1e-6,
            target_objective: None,
            bound_cutoff: None,
            initial_bound: None,
            dive_heuristic: true,
            branch_rule: BranchRule::default(),
            warm_start: true,
            lp: SimplexOptions::default(),
        }
    }
}

/// Termination status of a branch-and-bound run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MilpStatus {
    /// Optimality proven within the configured gap.
    Optimal,
    /// No feasible assignment exists.
    Infeasible,
    /// The LP relaxation is unbounded.
    Unbounded,
    /// Stopped at the wall-clock limit.
    TimeLimit,
    /// Stopped at the node limit.
    NodeLimit,
    /// Stopped because an incumbent reached
    /// [`MilpOptions::target_objective`].
    TargetReached,
    /// Stopped because the global bound crossed
    /// [`MilpOptions::bound_cutoff`].
    BoundCutoff,
    /// The search could not run to a verdict: subtrees were dropped on
    /// unrecoverable numeric failures (or every worker died, in the
    /// parallel neuron search) and their bounds were folded conservatively
    /// instead of explored. `best_bound` is still sound.
    Aborted,
}

impl std::fmt::Display for MilpStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            MilpStatus::Optimal => "optimal",
            MilpStatus::Infeasible => "infeasible",
            MilpStatus::Unbounded => "unbounded",
            MilpStatus::TimeLimit => "time limit",
            MilpStatus::NodeLimit => "node limit",
            MilpStatus::TargetReached => "target reached",
            MilpStatus::BoundCutoff => "bound cutoff",
            MilpStatus::Aborted => "aborted",
        };
        f.write_str(s)
    }
}

/// Warm-start accounting for one branch-and-bound run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MilpStats {
    /// LP solves that started from a parent basis and stayed on the
    /// incremental dual-simplex path.
    pub warm_solves: usize,
    /// LP solves that ran the cold two-phase algorithm (root solves,
    /// warm-start disabled, or fallbacks after a stale/singular basis).
    pub cold_solves: usize,
    /// Estimated pivots avoided by warm-starting: for every warm solve,
    /// the running mean pivot count of the cold solves in the same run
    /// minus the warm solve's own pivots (clamped at zero). An estimate —
    /// the true counterfactual would require re-solving every node cold.
    pub pivots_saved: usize,
}

impl MilpStats {
    /// Accumulates `other` into `self` (used when merging sub-solver runs).
    pub fn merge(&mut self, other: MilpStats) {
        self.warm_solves += other.warm_solves;
        self.cold_solves += other.cold_solves;
        self.pivots_saved += other.pivots_saved;
    }
}

/// Running warm/cold accounting that produces a [`MilpStats`].
///
/// `pivots_saved` uses the running mean of cold-solve pivot counts as the
/// counterfactual cost of each warm solve; the root of every tree is cold,
/// so the mean is always defined by the time a warm solve happens.
#[derive(Debug, Clone, Copy, Default)]
pub struct WarmTracker {
    cold_pivots: usize,
    warm_pivots: usize,
    cold_solves: usize,
    warm_solves: usize,
    saved: f64,
}

impl WarmTracker {
    /// Records a cold solve that took `pivots` simplex iterations.
    pub fn record_cold(&mut self, pivots: usize) {
        self.cold_solves += 1;
        self.cold_pivots += pivots;
    }

    /// Records a warm solve that took `pivots` simplex iterations.
    pub fn record_warm(&mut self, pivots: usize) {
        self.warm_solves += 1;
        self.warm_pivots += pivots;
        if self.cold_solves > 0 {
            let avg = self.cold_pivots as f64 / self.cold_solves as f64;
            self.saved += (avg - pivots as f64).max(0.0);
        }
    }

    /// Snapshot of the accumulated statistics.
    pub fn stats(&self) -> MilpStats {
        MilpStats {
            warm_solves: self.warm_solves,
            cold_solves: self.cold_solves,
            pivots_saved: self.saved.round() as usize,
        }
    }
}

/// Result of a branch-and-bound run.
#[derive(Debug, Clone, PartialEq)]
pub struct MilpSolution {
    /// Termination status.
    pub status: MilpStatus,
    /// Best integral solution found, if any (variable values by [`VarId`]).
    pub x: Option<Vec<f64>>,
    /// Objective of the best integral solution, if any, in the model sense.
    pub objective: Option<f64>,
    /// Best proven bound on the optimum (upper bound when maximising,
    /// lower bound when minimising).
    pub best_bound: f64,
    /// Number of branch-and-bound nodes whose LP relaxation was solved.
    pub nodes: usize,
    /// Total simplex pivots across all LP solves.
    pub lp_iterations: usize,
    /// Warm-start accounting (all-cold when warm-starting is disabled).
    pub stats: MilpStats,
    /// Wall-clock time of the solve.
    pub elapsed: Duration,
    /// Worst degradation encountered anywhere in the search. `Exact`
    /// unless a numeric fault forced a cold or interval fallback, or a
    /// deadline folded unexplored subtrees into the bound.
    pub degradation: Degradation,
}

impl MilpSolution {
    /// Remaining absolute gap `|best_bound − objective|`, or `+∞` without an
    /// incumbent.
    pub fn gap(&self) -> f64 {
        match self.objective {
            Some(o) => (self.best_bound - o).abs(),
            None => f64::INFINITY,
        }
    }
}

/// A best-bound-first branch-and-bound MILP solver.
///
/// See the [crate-level documentation](crate) for an example.
#[derive(Debug, Clone, Default)]
pub struct BranchAndBound {
    opts: MilpOptions,
    /// Caller-provided basis for the root LP (see [`Self::with_root_warm`]).
    root_warm: Option<Arc<WarmStart>>,
    /// Ambient deadline from the caller (see [`Self::with_deadline`]).
    deadline: Deadline,
}

/// Open node: bounds override plus the parent's LP bound (score space).
struct Node {
    bounds: Vec<(f64, f64)>,
    score_bound: f64,
    depth: usize,
    /// `(variable, went_up)` branch that created this node, for
    /// pseudo-cost bookkeeping.
    branched_on: Option<(usize, bool)>,
    /// Optimal basis of the nearest solved ancestor, shared across
    /// siblings; `None` at the root or when no snapshot was available.
    warm: Option<Arc<WarmStart>>,
}

/// Per-variable pseudo-cost history: observed LP-bound degradation per
/// branch, split by direction.
#[derive(Debug, Clone, Copy, Default)]
struct PseudoCost {
    up_sum: f64,
    up_n: usize,
    down_sum: f64,
    down_n: usize,
}

impl PseudoCost {
    fn avg_up(&self) -> Option<f64> {
        (self.up_n > 0).then(|| self.up_sum / self.up_n as f64)
    }
    fn avg_down(&self) -> Option<f64> {
        (self.down_n > 0).then(|| self.down_sum / self.down_n as f64)
    }
}

/// Max-heap ordering on the score bound (ties: deeper first, to dive).
impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.score_bound == other.score_bound && self.depth == other.depth
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        self.score_bound
            .partial_cmp(&other.score_bound)
            .unwrap_or(Ordering::Equal)
            .then(self.depth.cmp(&other.depth))
    }
}

impl BranchAndBound {
    /// Creates a solver with default options.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a solver with explicit options.
    pub fn with_options(opts: MilpOptions) -> Self {
        Self {
            opts,
            root_warm: None,
            deadline: Deadline::none(),
        }
    }

    /// Attaches an ambient deadline/cancellation token. Each solve runs
    /// under this deadline tightened by [`MilpOptions::time_limit`], and
    /// the token is threaded into every LP solve so expiry is observed at
    /// pivot granularity, not just between nodes. Expiry yields
    /// [`MilpStatus::TimeLimit`] with a sound `best_bound` tagged
    /// [`Degradation::TimedOut`].
    #[must_use]
    pub fn with_deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = deadline;
        self
    }

    /// Seeds the root LP with a basis obtained elsewhere on a model of the
    /// same shape (e.g. the caller's own relaxation solve under nearby
    /// bounds). Dimension mismatches and stale bases fall back to a cold
    /// solve, so a wrong seed costs pivots but never correctness. Ignored
    /// when [`MilpOptions::warm_start`] is off.
    #[must_use]
    pub fn with_root_warm(mut self, warm: Arc<WarmStart>) -> Self {
        self.root_warm = Some(warm);
        self
    }

    /// Solves the model.
    ///
    /// # Errors
    ///
    /// Returns [`MilpError`] if the model is malformed (NaN data, inverted
    /// bounds).
    pub fn solve(&self, model: &MilpModel) -> Result<MilpSolution, MilpError> {
        let start = Instant::now();
        let _obs_span = certnn_obs::span("milp.solve");
        let mut obs_incumbents = 0u64;
        let mut obs_dropped = 0u64;
        let sense_sign = match model.sense() {
            Sense::Maximize => 1.0,
            Sense::Minimize => -1.0,
        };
        let int_vars: Vec<VarId> = model.integer_vars();
        // The ambient deadline tightened by this solve's own budget; the
        // simplex polls it between pivot batches, so even a single huge LP
        // cannot overshoot the limit by more than one batch.
        let deadline = self.deadline.tighten(self.opts.time_limit);
        let simplex = Simplex::with_options(self.opts.lp).with_deadline(deadline.clone());
        let lp = model.relaxation();

        let root_bounds: Vec<(f64, f64)> =
            (0..model.num_vars()).map(|i| model.bounds(VarId::from_index(i))).collect();

        let mut nodes_explored = 0usize;
        let mut lp_iterations = 0usize;
        let mut incumbent: Option<(Vec<f64>, f64)> = None; // (x, score)
        // Best feasible score known so far: the incumbent or the
        // externally supplied one, whichever is better.
        let external_score = self.opts.initial_bound.map(|v| sense_sign * v);
        let best_known = |inc: &Option<(Vec<f64>, f64)>| -> Option<f64> {
            match (inc.as_ref().map(|(_, s)| *s), external_score) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            }
        };
        let mut heap = BinaryHeap::new();
        heap.push(Node {
            bounds: root_bounds,
            score_bound: f64::INFINITY,
            depth: 0,
            branched_on: None,
            warm: self.root_warm.clone(),
        });
        let mut tracker = WarmTracker::default();
        let mut pseudo: Vec<PseudoCost> = vec![PseudoCost::default(); model.num_vars()];
        let mut global_bound = f64::INFINITY; // score space
        let mut status = MilpStatus::Optimal;
        let mut degradation = Degradation::Exact;
        // Best (score-space) bound over every subtree that was *dropped*
        // rather than explored — pivot-limited nodes and nodes whose LP
        // failed numerically even after a cold retry. Folded into the
        // reported bound at the end so it stays sound.
        let mut dropped_bound = f64::NEG_INFINITY;

        'search: while let Some(node) = heap.pop() {
            // Best-first: the popped node carries the best remaining bound.
            global_bound = node.score_bound;
            if let Some(inc_score) = best_known(&incumbent) {
                if global_bound <= inc_score + self.opts.abs_gap
                    || global_bound <= inc_score + self.opts.rel_gap * inc_score.abs()
                {
                    status = MilpStatus::Optimal;
                    global_bound = inc_score;
                    break 'search;
                }
            }
            if let Some(cut) = self.opts.bound_cutoff {
                let cut_score = sense_sign * cut;
                if global_bound.is_finite() && global_bound < cut_score {
                    status = MilpStatus::BoundCutoff;
                    break 'search;
                }
            }
            if deadline.expired() {
                // Best-first order makes the popped node's bound dominate
                // everything left on the heap, so breaking here is sound.
                status = MilpStatus::TimeLimit;
                degradation = degradation.merge(Degradation::TimedOut);
                break 'search;
            }
            if let Some(limit) = self.opts.node_limit {
                if nodes_explored >= limit {
                    status = MilpStatus::NodeLimit;
                    break 'search;
                }
            }

            // Warm-start from the nearest solved ancestor's basis when
            // enabled and available; `solve_warm` itself falls back to a
            // cold run on a stale or singular snapshot.
            let attempt = match (self.opts.warm_start, node.warm.as_deref()) {
                (true, Some(warm)) => simplex.solve_warm(lp, &node.bounds, warm),
                (true, None) => simplex.solve_snapshot(lp, &node.bounds),
                (false, _) => {
                    simplex
                        .solve_with_bounds(lp, &node.bounds)
                        .map(|solution| WarmSolve {
                            solution,
                            warm: None,
                            warm_used: false,
                            fallback: None,
                        })
                }
            };
            // Retry ladder: warm → cold happens inside `solve_warm` (the
            // cause, if any, lands in `ws.fallback`); a typed solve error
            // escaping that gets one cold retry from scratch; a second
            // failure drops the node and folds a sound interval bound on
            // its subtree into `dropped_bound` instead of crashing the
            // whole search.
            let ws = match attempt {
                Ok(ws) => {
                    if ws.fallback.is_some() {
                        degradation = degradation.merge(Degradation::ColdFallback);
                    }
                    ws
                }
                Err(LpError::Solve(_)) => match simplex.solve_snapshot(lp, &node.bounds) {
                    Ok(ws) => {
                        degradation = degradation.merge(Degradation::ColdFallback);
                        ws
                    }
                    Err(LpError::Solve(_)) => {
                        let fb = interval_score_bound(lp, &node.bounds, sense_sign)
                            .min(node.score_bound);
                        dropped_bound = dropped_bound.max(fb);
                        degradation = degradation.merge(Degradation::IntervalOnly);
                        obs_dropped += 1;
                        nodes_explored += 1;
                        continue;
                    }
                    Err(e) => return Err(e.into()),
                },
                Err(e) => return Err(e.into()),
            };
            if ws.warm_used {
                tracker.record_warm(ws.solution.iterations);
            } else {
                tracker.record_cold(ws.solution.iterations);
            }
            let snapshot = ws.warm.map(Arc::new);
            let sol = ws.solution;
            nodes_explored += 1;
            lp_iterations += sol.iterations;
            match sol.status {
                LpStatus::Infeasible => continue,
                LpStatus::Unbounded => {
                    if node.depth == 0 {
                        status = MilpStatus::Unbounded;
                        global_bound = f64::INFINITY;
                        break 'search;
                    }
                    continue;
                }
                LpStatus::IterationLimit => {
                    // Unresolved node: its subtree optimum is still capped
                    // by the parent bound, so fold that in rather than
                    // silently forgetting the subtree.
                    dropped_bound = dropped_bound.max(node.score_bound);
                    degradation = degradation.merge(Degradation::IntervalOnly);
                    obs_dropped += 1;
                    continue;
                }
                LpStatus::Deadline => {
                    // Pivot-level expiry inside the LP; the popped node's
                    // bound dominates the heap, so stopping here is sound.
                    dropped_bound = dropped_bound.max(node.score_bound);
                    degradation = degradation.merge(Degradation::TimedOut);
                    obs_dropped += 1;
                    status = MilpStatus::TimeLimit;
                    break 'search;
                }
                LpStatus::Optimal => {}
            }
            let node_score = sense_sign * sol.objective;
            // LP bound can only be <= parent bound (score space).
            let node_score = node_score.min(node.score_bound);
            // Record the bound degradation caused by the branch that
            // created this node (pseudo-cost learning).
            if let Some((var, went_up)) = node.branched_on {
                let degrade = (node.score_bound - node_score).max(0.0);
                let pc = &mut pseudo[var];
                if went_up {
                    pc.up_sum += degrade;
                    pc.up_n += 1;
                } else {
                    pc.down_sum += degrade;
                    pc.down_n += 1;
                }
            }

            if let Some(inc_score) = best_known(&incumbent) {
                if node_score <= inc_score + self.opts.abs_gap {
                    continue; // dominated
                }
            }

            // Pick the branching variable.
            let mut branch: Option<(VarId, f64, f64)> = None; // (var, value, score: smaller=better)
            for &v in &int_vars {
                let val = sol.x[v.index()];
                let frac = (val - val.round()).abs();
                if frac <= self.opts.int_tol {
                    continue;
                }
                let score = match self.opts.branch_rule {
                    // 0 = most fractional wins.
                    BranchRule::MostFractional => (val - val.floor() - 0.5).abs(),
                    BranchRule::PseudoCost => {
                        let pc = &pseudo[v.index()];
                        let up_frac = val.ceil() - val;
                        let down_frac = val - val.floor();
                        let up = pc.avg_up().unwrap_or(1.0) * up_frac;
                        let down = pc.avg_down().unwrap_or(1.0) * down_frac;
                        // Product rule; negate so "smaller is better".
                        -(up.max(1e-9) * down.max(1e-9))
                    }
                };
                match branch {
                    Some((_, _, best)) if score >= best => {}
                    _ => branch = Some((v, val, score)),
                }
            }

            match branch {
                None => {
                    // Integral: candidate incumbent.
                    if update_incumbent(&mut incumbent, sol.x.clone(), node_score) {
                        obs_incumbents += 1;
                        if let Some(target) = self.opts.target_objective {
                            let target_score = sense_sign * target;
                            if node_score >= target_score {
                                status = MilpStatus::TargetReached;
                                break 'search;
                            }
                        }
                    }
                }
                Some((v, val, _)) => {
                    // Dive heuristic: round-and-fix for a quick incumbent.
                    if self.opts.dive_heuristic
                        && (incumbent.is_none() || nodes_explored.is_multiple_of(64))
                    {
                        if let Some((hx, hscore)) = self.dive(
                            model,
                            &simplex,
                            &node.bounds,
                            &int_vars,
                            &sol.x,
                            snapshot.as_deref(),
                            &mut lp_iterations,
                            &mut tracker,
                        ) {
                            if update_incumbent(&mut incumbent, hx, hscore) {
                                obs_incumbents += 1;
                                if let Some(target) = self.opts.target_objective {
                                    if hscore >= sense_sign * target {
                                        status = MilpStatus::TargetReached;
                                        break 'search;
                                    }
                                }
                            }
                        }
                    }
                    let (lo, hi) = node.bounds[v.index()];
                    let down = val.floor();
                    let up = val.ceil();
                    // Children inherit this node's basis; when no snapshot
                    // exists (e.g. the LP needed artificials) the nearest
                    // solved ancestor's basis is still better than nothing.
                    let child_warm = snapshot.clone().or_else(|| node.warm.clone());
                    if down >= lo - self.opts.int_tol {
                        let mut b = node.bounds.clone();
                        b[v.index()] = (lo, down.min(hi));
                        heap.push(Node {
                            bounds: b,
                            score_bound: node_score,
                            depth: node.depth + 1,
                            branched_on: Some((v.index(), false)),
                            warm: child_warm.clone(),
                        });
                    }
                    if up <= hi + self.opts.int_tol {
                        let mut b = node.bounds.clone();
                        b[v.index()] = (up.max(lo), hi);
                        heap.push(Node {
                            bounds: b,
                            score_bound: node_score,
                            depth: node.depth + 1,
                            branched_on: Some((v.index(), true)),
                            warm: child_warm,
                        });
                    }
                }
            }
        }

        if heap.is_empty() && status == MilpStatus::Optimal {
            // Search exhausted: the best known feasible score is optimal.
            // With only an external `initial_bound` (no integral point of
            // our own), the result is still Optimal — the optimum cannot
            // beat the external value by more than the gap — but `x`
            // stays `None`.
            global_bound = match best_known(&incumbent) {
                Some(s) => s,
                None => {
                    status = MilpStatus::Infeasible;
                    f64::NEG_INFINITY
                }
            };
        }

        // Fold dropped subtrees back into the verdict. If the folded bound
        // re-opens a gap the status claimed was closed — or contradicts an
        // Infeasible claim — the verdict honestly degrades to `Aborted`
        // with the (still sound) folded bound.
        if dropped_bound > f64::NEG_INFINITY {
            match status {
                MilpStatus::Infeasible => {
                    // Dropped subtrees may contain feasible points.
                    status = MilpStatus::Aborted;
                    global_bound = global_bound.max(dropped_bound);
                }
                MilpStatus::Optimal if dropped_bound > global_bound => {
                    global_bound = dropped_bound;
                    let closed = best_known(&incumbent).is_some_and(|inc| {
                        global_bound <= inc + self.opts.abs_gap
                            || global_bound <= inc + self.opts.rel_gap * inc.abs()
                    });
                    if !closed {
                        status = MilpStatus::Aborted;
                    }
                }
                _ => global_bound = global_bound.max(dropped_bound),
            }
        }

        if certnn_obs::enabled() {
            let m = milp_metrics();
            m.solves.inc();
            m.nodes.add(nodes_explored as u64);
            m.incumbent_updates.add(obs_incumbents);
            m.dropped_subtrees.add(obs_dropped);
        }

        let (x, objective) = match incumbent {
            Some((x, score)) => (Some(x), Some(sense_sign * score)),
            None => (None, None),
        };
        Ok(MilpSolution {
            status,
            x,
            objective,
            best_bound: sense_sign * global_bound,
            nodes: nodes_explored,
            lp_iterations,
            stats: tracker.stats(),
            elapsed: start.elapsed(),
            degradation,
        })
    }

    /// Rounds every integer variable to the nearest integer, fixes it, and
    /// re-solves the LP. Returns a feasible integral point (score space) on
    /// success.
    #[allow(clippy::too_many_arguments)]
    fn dive(
        &self,
        model: &MilpModel,
        simplex: &Simplex,
        bounds: &[(f64, f64)],
        int_vars: &[VarId],
        relax_x: &[f64],
        warm: Option<&WarmStart>,
        lp_iterations: &mut usize,
        tracker: &mut WarmTracker,
    ) -> Option<(Vec<f64>, f64)> {
        let mut fixed = bounds.to_vec();
        for &v in int_vars {
            let (lo, hi) = bounds[v.index()];
            let r = relax_x[v.index()].round().clamp(lo, hi);
            fixed[v.index()] = (r, r);
        }
        // The dive only pins bounds, so the node basis warm-starts it too.
        let sol = match (self.opts.warm_start, warm) {
            (true, Some(w)) => {
                let ws = simplex.solve_warm(model.relaxation(), &fixed, w).ok()?;
                if ws.warm_used {
                    tracker.record_warm(ws.solution.iterations);
                } else {
                    tracker.record_cold(ws.solution.iterations);
                }
                ws.solution
            }
            _ => {
                let sol = simplex.solve_with_bounds(model.relaxation(), &fixed).ok()?;
                tracker.record_cold(sol.iterations);
                sol
            }
        };
        if sol.status != LpStatus::Optimal {
            return None;
        }
        *lp_iterations += sol.iterations;
        if !model.is_feasible(&sol.x, self.opts.int_tol.max(1e-6)) {
            return None;
        }
        let sense_sign = match model.sense() {
            Sense::Maximize => 1.0,
            Sense::Minimize => -1.0,
        };
        Some((sol.x.clone(), sense_sign * sol.objective))
    }
}

/// Sound interval (box) bound on the LP objective in score space: every
/// variable sits at whichever of its bounds the sense-corrected objective
/// coefficient prefers, rows ignored. Never tighter than the true LP bound,
/// so it can stand in for a subtree whose LP solve failed.
fn interval_score_bound(lp: &LpModel, bounds: &[(f64, f64)], sense_sign: f64) -> f64 {
    bounds
        .iter()
        .enumerate()
        .map(|(j, &(lo, hi))| {
            let c = sense_sign * lp.objective_coeff(VarId::from_index(j));
            (c * lo).max(c * hi)
        })
        .sum()
}

/// Replaces the incumbent if `score` improves it. Returns `true` on update.
fn update_incumbent(inc: &mut Option<(Vec<f64>, f64)>, x: Vec<f64>, score: f64) -> bool {
    match inc {
        Some((_, s)) if score <= *s => false,
        _ => {
            *inc = Some((x, score));
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certnn_lp::RowKind;

    fn knapsack() -> MilpModel {
        let mut m = MilpModel::new(Sense::Maximize);
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        let d = m.add_binary("d");
        m.set_objective(&[(a, 10.0), (b, 13.0), (c, 7.0), (d, 4.0)]);
        m.add_row(
            "cap",
            &[(a, 6.0), (b, 8.0), (c, 5.0), (d, 3.0)],
            RowKind::Le,
            14.0,
        )
        .unwrap();
        m
    }

    #[test]
    fn knapsack_optimum() {
        // Best subset of weights 6,8,5,3 within 14: {a,b} = 23.
        let sol = BranchAndBound::new().solve(&knapsack()).unwrap();
        assert_eq!(sol.status, MilpStatus::Optimal);
        assert!((sol.objective.unwrap() - 23.0).abs() < 1e-6);
        assert!(sol.gap() < 1e-5);
        let x = sol.x.unwrap();
        assert!((x[0] - 1.0).abs() < 1e-6 && (x[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn fractional_lp_relaxation_forces_branching() {
        // max x st 2x <= 3, x integer in [0, 5] => LP gives 1.5, MILP 1.
        let mut m = MilpModel::new(Sense::Maximize);
        let x = m.add_integer("x", 0.0, 5.0);
        m.set_objective(&[(x, 1.0)]);
        m.add_row("r", &[(x, 2.0)], RowKind::Le, 3.0).unwrap();
        let sol = BranchAndBound::new().solve(&m).unwrap();
        assert_eq!(sol.status, MilpStatus::Optimal);
        assert!((sol.objective.unwrap() - 1.0).abs() < 1e-6);
        assert!(sol.nodes >= 1);
    }

    #[test]
    fn infeasible_milp() {
        let mut m = MilpModel::new(Sense::Maximize);
        let x = m.add_binary("x");
        m.set_objective(&[(x, 1.0)]);
        m.add_row("lo", &[(x, 1.0)], RowKind::Ge, 2.0).unwrap();
        let sol = BranchAndBound::new().solve(&m).unwrap();
        assert_eq!(sol.status, MilpStatus::Infeasible);
        assert!(sol.x.is_none());
        assert!(sol.gap().is_infinite());
    }

    #[test]
    fn minimize_sense() {
        // min 3a + 2b st a + b >= 1, binaries => b alone = 2.
        let mut m = MilpModel::new(Sense::Minimize);
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        m.set_objective(&[(a, 3.0), (b, 2.0)]);
        m.add_row("cover", &[(a, 1.0), (b, 1.0)], RowKind::Ge, 1.0)
            .unwrap();
        let sol = BranchAndBound::new().solve(&m).unwrap();
        assert_eq!(sol.status, MilpStatus::Optimal);
        assert!((sol.objective.unwrap() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn mixed_continuous_and_integer() {
        // max 2x + y, x continuous in [0, 2.5], y integer in [0, 3],
        // x + y <= 4 => x = 2.5, y = 1 (y must be integral) obj 6.0... check:
        // x=2.5 => y <= 1.5 => y=1, obj 6.0.
        let mut m = MilpModel::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 2.5);
        let y = m.add_integer("y", 0.0, 3.0);
        m.set_objective(&[(x, 2.0), (y, 1.0)]);
        m.add_row("r", &[(x, 1.0), (y, 1.0)], RowKind::Le, 4.0)
            .unwrap();
        let sol = BranchAndBound::new().solve(&m).unwrap();
        assert_eq!(sol.status, MilpStatus::Optimal);
        assert!((sol.objective.unwrap() - 6.0).abs() < 1e-6, "{:?}", sol.objective);
        let xs = sol.x.unwrap();
        assert!((xs[1] - xs[1].round()).abs() < 1e-6);
    }

    #[test]
    fn target_objective_stops_early() {
        let opts = MilpOptions {
            target_objective: Some(15.0),
            ..MilpOptions::default()
        };
        let sol = BranchAndBound::with_options(opts).solve(&knapsack()).unwrap();
        assert!(matches!(
            sol.status,
            MilpStatus::TargetReached | MilpStatus::Optimal
        ));
        assert!(sol.objective.unwrap() >= 15.0);
    }

    #[test]
    fn bound_cutoff_proves_limit() {
        // Capacity 15 makes the root LP fractional (bound ~24.4) while the
        // MILP optimum is 23. A cutoff of 23.6 sits strictly between them,
        // so the search must stop with BoundCutoff before closing the gap.
        let mut m = MilpModel::new(Sense::Maximize);
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        let d = m.add_binary("d");
        m.set_objective(&[(a, 10.0), (b, 13.0), (c, 7.0), (d, 4.0)]);
        m.add_row(
            "cap",
            &[(a, 6.0), (b, 8.0), (c, 5.0), (d, 3.0)],
            RowKind::Le,
            15.0,
        )
        .unwrap();
        let opts = MilpOptions {
            bound_cutoff: Some(23.6),
            dive_heuristic: false,
            ..MilpOptions::default()
        };
        let sol = BranchAndBound::with_options(opts).solve(&m).unwrap();
        assert_eq!(sol.status, MilpStatus::BoundCutoff);
        assert!(sol.best_bound < 23.6);
        // The proven bound is still a valid upper bound on the optimum (23).
        assert!(sol.best_bound >= 23.0 - 1e-6);
    }

    #[test]
    fn initial_bound_prunes_without_becoming_solution() {
        // Handing the solver the true optimum as an external feasible
        // value closes the search by pruning; the result must be Optimal
        // without inventing a solution point.
        let opts = MilpOptions {
            initial_bound: Some(23.0),
            dive_heuristic: false,
            ..MilpOptions::default()
        };
        let sol = BranchAndBound::with_options(opts).solve(&knapsack()).unwrap();
        assert_eq!(sol.status, MilpStatus::Optimal);
        assert!(sol.best_bound <= 23.0 + 1e-6);
        if let Some(obj) = sol.objective {
            assert!((obj - 23.0).abs() < 1e-6);
        }

        // A loose external bound must not change the answer.
        let opts = MilpOptions {
            initial_bound: Some(10.0),
            ..MilpOptions::default()
        };
        let sol = BranchAndBound::with_options(opts).solve(&knapsack()).unwrap();
        assert_eq!(sol.status, MilpStatus::Optimal);
        assert!((sol.objective.unwrap() - 23.0).abs() < 1e-6);
    }

    #[test]
    fn initial_bound_respects_sense_when_minimizing() {
        // min 3a + 2b s.t. a + b >= 1 has optimum 2; an external feasible
        // value of 2 closes the gap in the minimisation sense.
        let mut m = MilpModel::new(Sense::Minimize);
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        m.set_objective(&[(a, 3.0), (b, 2.0)]);
        m.add_row("cover", &[(a, 1.0), (b, 1.0)], RowKind::Ge, 1.0)
            .unwrap();
        let opts = MilpOptions {
            initial_bound: Some(2.0),
            dive_heuristic: false,
            ..MilpOptions::default()
        };
        let sol = BranchAndBound::with_options(opts).solve(&m).unwrap();
        assert_eq!(sol.status, MilpStatus::Optimal);
        // best_bound is a valid lower bound on the minimum.
        assert!(sol.best_bound <= 2.0 + 1e-6);
        assert!(sol.best_bound >= 2.0 - 1e-6);
    }

    #[test]
    fn node_limit_respected() {
        let opts = MilpOptions {
            node_limit: Some(1),
            dive_heuristic: false,
            ..MilpOptions::default()
        };
        let mut m = MilpModel::new(Sense::Maximize);
        // A problem needing several nodes: equal weights force branching.
        let vars: Vec<_> = (0..6).map(|i| m.add_binary(&format!("b{i}"))).collect();
        m.set_objective(&vars.iter().map(|&v| (v, 1.0)).collect::<Vec<_>>());
        m.add_row(
            "r",
            &vars.iter().map(|&v| (v, 2.0)).collect::<Vec<_>>(),
            RowKind::Le,
            5.0,
        )
        .unwrap();
        let sol = BranchAndBound::with_options(opts).solve(&m).unwrap();
        assert!(sol.nodes <= 2);
    }

    #[test]
    fn pure_lp_without_integers() {
        let mut m = MilpModel::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 7.0);
        m.set_objective(&[(x, 2.0)]);
        let sol = BranchAndBound::new().solve(&m).unwrap();
        assert_eq!(sol.status, MilpStatus::Optimal);
        assert!((sol.objective.unwrap() - 14.0).abs() < 1e-9);
    }

    #[test]
    fn incumbent_is_always_feasible() {
        let m = knapsack();
        let sol = BranchAndBound::new().solve(&m).unwrap();
        assert!(m.is_feasible(&sol.x.unwrap(), 1e-6));
    }

    #[test]
    fn best_bound_brackets_objective() {
        let sol = BranchAndBound::new().solve(&knapsack()).unwrap();
        // Maximisation: bound >= objective.
        assert!(sol.best_bound >= sol.objective.unwrap() - 1e-6);
    }

    #[test]
    fn pseudo_cost_branching_reaches_the_same_optimum() {
        let mut m = MilpModel::new(Sense::Maximize);
        let vars: Vec<_> = (0..8).map(|i| m.add_binary(&format!("b{i}"))).collect();
        m.set_objective(
            &vars
                .iter()
                .enumerate()
                .map(|(i, &v)| (v, 3.0 + ((i * 7) % 5) as f64))
                .collect::<Vec<_>>(),
        );
        m.add_row(
            "cap",
            &vars
                .iter()
                .enumerate()
                .map(|(i, &v)| (v, 2.0 + (i % 3) as f64))
                .collect::<Vec<_>>(),
            RowKind::Le,
            11.0,
        )
        .unwrap();
        let frac = BranchAndBound::new().solve(&m).unwrap();
        let opts = MilpOptions {
            branch_rule: BranchRule::PseudoCost,
            dive_heuristic: false,
            ..MilpOptions::default()
        };
        let pc = BranchAndBound::with_options(opts).solve(&m).unwrap();
        assert_eq!(pc.status, MilpStatus::Optimal);
        assert!(
            (pc.objective.unwrap() - frac.objective.unwrap()).abs() < 1e-6,
            "pseudo-cost {:?} vs most-fractional {:?}",
            pc.objective,
            frac.objective
        );
    }

    #[test]
    fn warm_and_cold_search_agree_on_knapsack() {
        let m = knapsack();
        let warm = BranchAndBound::new().solve(&m).unwrap();
        let cold = BranchAndBound::with_options(MilpOptions {
            warm_start: false,
            ..MilpOptions::default()
        })
        .solve(&m)
        .unwrap();
        assert_eq!(warm.status, cold.status);
        assert!((warm.objective.unwrap() - cold.objective.unwrap()).abs() < 1e-9);
        assert!((warm.best_bound - cold.best_bound).abs() < 1e-6);
        assert_eq!(cold.stats.warm_solves, 0, "disabled run must be all-cold");
    }

    #[test]
    fn warm_solves_dominate_on_branching_heavy_instance() {
        // Equal weights force deep branching: nearly every node after the
        // root should ride its parent's basis.
        let mut m = MilpModel::new(Sense::Maximize);
        let vars: Vec<_> = (0..10).map(|i| m.add_binary(&format!("b{i}"))).collect();
        m.set_objective(
            &vars
                .iter()
                .enumerate()
                .map(|(i, &v)| (v, 5.0 + (i % 4) as f64 * 0.25))
                .collect::<Vec<_>>(),
        );
        m.add_row(
            "cap",
            &vars.iter().map(|&v| (v, 2.0)).collect::<Vec<_>>(),
            RowKind::Le,
            9.0,
        )
        .unwrap();
        let warm = BranchAndBound::new().solve(&m).unwrap();
        let cold = BranchAndBound::with_options(MilpOptions {
            warm_start: false,
            ..MilpOptions::default()
        })
        .solve(&m)
        .unwrap();
        assert_eq!(warm.status, MilpStatus::Optimal);
        assert!((warm.objective.unwrap() - cold.objective.unwrap()).abs() < 1e-9);
        assert!(
            warm.stats.warm_solves > warm.stats.cold_solves,
            "warm {} vs cold {} solves",
            warm.stats.warm_solves,
            warm.stats.cold_solves
        );
        assert!(
            warm.lp_iterations < cold.lp_iterations,
            "warm tree spent {} pivots, cold tree {}",
            warm.lp_iterations,
            cold.lp_iterations
        );
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = MilpStats {
            warm_solves: 1,
            cold_solves: 2,
            pivots_saved: 3,
        };
        a.merge(MilpStats {
            warm_solves: 10,
            cold_solves: 20,
            pivots_saved: 30,
        });
        assert_eq!(a.warm_solves, 11);
        assert_eq!(a.cold_solves, 22);
        assert_eq!(a.pivots_saved, 33);
    }

    #[test]
    fn tracker_estimates_savings_against_cold_average() {
        let mut t = WarmTracker::default();
        t.record_cold(100);
        t.record_cold(50); // mean 75
        t.record_warm(5); // saves 70
        t.record_warm(200); // clamped to 0
        let s = t.stats();
        assert_eq!(s.cold_solves, 2);
        assert_eq!(s.warm_solves, 2);
        assert_eq!(s.pivots_saved, 70);
    }

    #[test]
    fn general_integer_negative_range() {
        // min x^1 st x >= -2.5 over integers in [-5, 5] => -2.
        let mut m = MilpModel::new(Sense::Minimize);
        let x = m.add_integer("x", -5.0, 5.0);
        m.set_objective(&[(x, 1.0)]);
        m.add_row("r", &[(x, 1.0)], RowKind::Ge, -2.5).unwrap();
        let sol = BranchAndBound::new().solve(&m).unwrap();
        assert_eq!(sol.status, MilpStatus::Optimal);
        assert!((sol.objective.unwrap() + 2.0).abs() < 1e-6);
    }
}
