//! MILP model builder.

use certnn_lp::{LpError, LpModel, RowId, RowKind, Sense, VarId};
use std::fmt;

/// Continuity class of a variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum VarKind {
    /// A continuous variable.
    #[default]
    Continuous,
    /// A variable restricted to integral values within its bounds.
    Integer,
}

/// A mixed-integer linear program under construction.
///
/// Wraps an [`LpModel`] and remembers which variables are integral. The
/// neural-network encoder in `certnn-verify` produces one binary per
/// unstable ReLU neuron plus continuous variables for inputs and
/// activations.
///
/// # Example
///
/// ```
/// use certnn_milp::MilpModel;
/// use certnn_lp::Sense;
///
/// let mut m = MilpModel::new(Sense::Maximize);
/// let x = m.add_var("x", 0.0, 1.5);
/// let b = m.add_binary("b");
/// assert!(!m.is_integer(x));
/// assert!(m.is_integer(b));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MilpModel {
    lp: LpModel,
    kinds: Vec<VarKind>,
}

impl MilpModel {
    /// Creates an empty model with the given optimisation sense.
    pub fn new(sense: Sense) -> Self {
        Self {
            lp: LpModel::new(sense),
            kinds: Vec::new(),
        }
    }

    /// Adds a continuous variable with bounds `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is NaN.
    pub fn add_var(&mut self, name: &str, lo: f64, hi: f64) -> VarId {
        let id = self.lp.add_var(name, lo, hi);
        self.kinds.push(VarKind::Continuous);
        id
    }

    /// Adds a binary (0/1 integer) variable.
    pub fn add_binary(&mut self, name: &str) -> VarId {
        self.add_integer(name, 0.0, 1.0)
    }

    /// Adds an integer variable with bounds `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is NaN.
    pub fn add_integer(&mut self, name: &str, lo: f64, hi: f64) -> VarId {
        let id = self.lp.add_var(name, lo, hi);
        self.kinds.push(VarKind::Integer);
        id
    }

    /// Returns `true` if `var` is integral.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to this model.
    pub fn is_integer(&self, var: VarId) -> bool {
        self.kinds[var.index()] == VarKind::Integer
    }

    /// Kind of `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to this model.
    pub fn kind(&self, var: VarId) -> VarKind {
        self.kinds[var.index()]
    }

    /// Updates the bounds of an existing variable.
    ///
    /// # Errors
    ///
    /// See [`LpModel::set_bounds`].
    pub fn set_bounds(&mut self, var: VarId, lo: f64, hi: f64) -> Result<(), LpError> {
        self.lp.set_bounds(var, lo, hi)
    }

    /// Returns the bounds of `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to this model.
    pub fn bounds(&self, var: VarId) -> (f64, f64) {
        self.lp.bounds(var)
    }

    /// Sets the objective (overwriting any previous objective).
    ///
    /// # Panics
    ///
    /// See [`LpModel::set_objective`].
    pub fn set_objective(&mut self, coeffs: &[(VarId, f64)]) {
        self.lp.set_objective(coeffs)
    }

    /// Adds a constraint row.
    ///
    /// # Errors
    ///
    /// See [`LpModel::add_row`].
    pub fn add_row(
        &mut self,
        name: &str,
        coeffs: &[(VarId, f64)],
        kind: RowKind,
        rhs: f64,
    ) -> Result<RowId, LpError> {
        self.lp.add_row(name, coeffs, kind, rhs)
    }

    /// Number of variables (continuous + integer).
    pub fn num_vars(&self) -> usize {
        self.lp.num_vars()
    }

    /// Number of integer variables.
    pub fn num_integers(&self) -> usize {
        self.kinds.iter().filter(|k| **k == VarKind::Integer).count()
    }

    /// Number of constraint rows.
    pub fn num_rows(&self) -> usize {
        self.lp.num_rows()
    }

    /// Optimisation sense.
    pub fn sense(&self) -> Sense {
        self.lp.sense()
    }

    /// Indices of the integer variables.
    pub fn integer_vars(&self) -> Vec<VarId> {
        self.kinds
            .iter()
            .enumerate()
            .filter(|(_, k)| **k == VarKind::Integer)
            .map(|(i, _)| VarId::from_index(i))
            .collect()
    }

    /// The underlying LP relaxation (integrality dropped).
    pub fn relaxation(&self) -> &LpModel {
        &self.lp
    }

    /// Checks feasibility of `x` including integrality within `tol`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.num_vars()`.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if !self.lp.is_feasible(x, tol) {
            return false;
        }
        self.kinds.iter().zip(x).all(|(k, &v)| match k {
            VarKind::Continuous => true,
            VarKind::Integer => (v - v.round()).abs() <= tol,
        })
    }

    /// Evaluates the objective at `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.num_vars()`.
    pub fn eval_objective(&self, x: &[f64]) -> f64 {
        self.lp.eval_objective(x)
    }
}

impl fmt::Display for MilpModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MILP: {} vars ({} integer), {} rows",
            self.num_vars(),
            self.num_integers(),
            self.num_rows()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_tracked() {
        let mut m = MilpModel::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, 1.0);
        let b = m.add_binary("b");
        let k = m.add_integer("k", -3.0, 3.0);
        assert_eq!(m.kind(x), VarKind::Continuous);
        assert_eq!(m.kind(b), VarKind::Integer);
        assert_eq!(m.kind(k), VarKind::Integer);
        assert_eq!(m.num_integers(), 2);
        assert_eq!(m.integer_vars(), vec![b, k]);
        assert_eq!(m.bounds(b), (0.0, 1.0));
    }

    #[test]
    fn feasibility_includes_integrality() {
        let mut m = MilpModel::new(Sense::Minimize);
        let _x = m.add_var("x", 0.0, 2.0);
        let _b = m.add_binary("b");
        assert!(m.is_feasible(&[1.5, 1.0], 1e-9));
        assert!(!m.is_feasible(&[1.5, 0.5], 1e-9));
        assert!(!m.is_feasible(&[3.0, 1.0], 1e-9));
    }

    #[test]
    fn display_counts() {
        let mut m = MilpModel::new(Sense::Maximize);
        m.add_binary("b");
        assert!(m.to_string().contains("1 integer"));
    }
}
