//! Mixed-integer linear programming via branch-and-bound.
//!
//! `certnn-milp` layers integrality on top of the [`certnn_lp`] simplex
//! solver. It exists to solve the neural-network verification encodings of
//! `certnn-verify` (big-M ReLU encodings with one binary per unstable
//! neuron, per Cheng et al., ATVA 2017), but is a general-purpose MILP
//! solver:
//!
//! * [`MilpModel`] — continuous, binary and general-integer variables,
//!   sparse rows, single linear objective.
//! * [`BranchAndBound`] — best-bound-first search with most-fractional
//!   branching, LP re-solves via [`certnn_lp::Simplex::solve_with_bounds`],
//!   a rounding dive heuristic for early incumbents, and absolute/relative
//!   gap, node, time and threshold termination criteria. Threshold
//!   termination is what makes the *decision* query of the paper's Table II
//!   ("prove lateral velocity ≤ 3 m/s") cheaper than full optimisation.
//!
//! # Example
//!
//! ```
//! use certnn_milp::{BranchAndBound, MilpModel, MilpStatus};
//! use certnn_lp::{RowKind, Sense};
//!
//! # fn main() -> Result<(), certnn_milp::MilpError> {
//! // Knapsack: max 8a + 11b + 6c, 5a + 7b + 4c <= 14, binaries.
//! let mut m = MilpModel::new(Sense::Maximize);
//! let a = m.add_binary("a");
//! let b = m.add_binary("b");
//! let c = m.add_binary("c");
//! m.set_objective(&[(a, 8.0), (b, 11.0), (c, 6.0)]);
//! m.add_row("cap", &[(a, 5.0), (b, 7.0), (c, 4.0)], RowKind::Le, 14.0)?;
//! let sol = BranchAndBound::new().solve(&m)?;
//! assert_eq!(sol.status, MilpStatus::Optimal);
//! assert!((sol.objective.unwrap() - 19.0).abs() < 1e-6);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

pub mod export;
mod model;
mod solver;

pub use model::{MilpModel, VarKind};
pub use solver::{BranchAndBound, MilpOptions, MilpSolution, MilpStats, MilpStatus, WarmTracker};

pub use certnn_lp::{
    Deadline, Degradation, LpError, RowId, RowKind, Sense, SolveError, VarId, WarmStart,
};

use std::error::Error;
use std::fmt;

/// Error raised while building or solving a MILP.
#[derive(Debug, Clone, PartialEq)]
pub enum MilpError {
    /// Underlying LP layer rejected the model.
    Lp(LpError),
    /// An integer variable has bounds the solver cannot branch on
    /// (NaN or inverted).
    BadIntegerBounds {
        /// The offending variable.
        var: VarId,
        /// Offending lower bound.
        lo: f64,
        /// Offending upper bound.
        hi: f64,
    },
}

impl fmt::Display for MilpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MilpError::Lp(e) => write!(f, "lp error: {e}"),
            MilpError::BadIntegerBounds { var, lo, hi } => {
                write!(f, "integer variable {var:?} has unusable bounds [{lo}, {hi}]")
            }
        }
    }
}

impl Error for MilpError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MilpError::Lp(e) => Some(e),
            MilpError::BadIntegerBounds { .. } => None,
        }
    }
}

impl From<LpError> for MilpError {
    fn from(e: LpError) -> Self {
        MilpError::Lp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_source() {
        let e = MilpError::from(LpError::NotANumber);
        assert!(e.to_string().contains("lp error"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
