//! Export of MILP models to the CPLEX LP text format.

use crate::model::MilpModel;
use certnn_lp::export::to_lp_format;
use std::fmt::Write as _;

/// Renders the MILP in LP format, appending the integrality section.
pub fn to_lp_format_milp(model: &MilpModel) -> String {
    let base = to_lp_format(model.relaxation());
    let ints = model.integer_vars();
    if ints.is_empty() {
        return base;
    }
    // Insert a Generals section before the trailing `End`.
    let mut s = base
        .strip_suffix("End\n")
        .unwrap_or(&base)
        .to_string();
    let _ = writeln!(s, "Generals");
    for v in ints {
        // Positional names match certnn-lp's sanitisation fallback; re-use
        // the relaxation's naming by index lookup.
        let name = {
            let raw = model.relaxation().var_name(v);
            if !raw.is_empty()
                && raw
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_')
                && !raw.starts_with(|c: char| c.is_ascii_digit())
            {
                raw.to_string()
            } else {
                format!("x{}", v.index())
            }
        };
        let _ = writeln!(s, " {name}");
    }
    s.push_str("End\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use certnn_lp::{RowKind, Sense};

    #[test]
    fn generals_section_lists_integer_vars() {
        let mut m = MilpModel::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 1.0);
        let b = m.add_binary("b");
        m.set_objective(&[(x, 1.0), (b, 1.0)]);
        m.add_row("r", &[(x, 1.0), (b, 1.0)], RowKind::Le, 1.5).unwrap();
        let text = to_lp_format_milp(&m);
        assert!(text.contains("Generals"));
        assert!(text.lines().any(|l| l.trim() == "b"));
        assert!(text.trim_end().ends_with("End"));
    }

    #[test]
    fn pure_lp_has_no_generals() {
        let mut m = MilpModel::new(Sense::Minimize);
        m.add_var("x", 0.0, 1.0);
        let text = to_lp_format_milp(&m);
        assert!(!text.contains("Generals"));
    }
}
