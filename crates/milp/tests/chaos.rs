//! Chaos suite for the branch-and-bound layer: under injected LP faults
//! the search never crashes, climbs the retry ladder (warm → cold →
//! interval fallback), reports its degradation honestly, and every
//! reported `best_bound` stays sound against the known optimum.
//!
//! Runs only with `--features fault-inject`.

#![cfg(feature = "fault-inject")]

use certnn_lp::fault::{self, FaultPlan};
use certnn_milp::{
    BranchAndBound, Deadline, Degradation, MilpModel, MilpOptions, MilpStatus, RowKind, Sense,
};
use std::time::{Duration, Instant};

/// Knapsack with optimum 23 ({a, b}) and a fractional root relaxation.
fn knapsack() -> (MilpModel, f64) {
    let mut m = MilpModel::new(Sense::Maximize);
    let a = m.add_binary("a");
    let b = m.add_binary("b");
    let c = m.add_binary("c");
    let d = m.add_binary("d");
    m.set_objective(&[(a, 10.0), (b, 13.0), (c, 7.0), (d, 4.0)]);
    m.add_row(
        "cap",
        &[(a, 6.0), (b, 8.0), (c, 5.0), (d, 3.0)],
        RowKind::Le,
        14.0,
    )
    .unwrap();
    (m, 23.0)
}

/// Branching-heavy instance (equal weights) with many nodes, so injected
/// faults land mid-search rather than at the root.
fn branchy() -> (MilpModel, f64) {
    let mut m = MilpModel::new(Sense::Maximize);
    let vars: Vec<_> = (0..10).map(|i| m.add_binary(&format!("b{i}"))).collect();
    m.set_objective(
        &vars
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, 5.0 + (i % 4) as f64 * 0.25))
            .collect::<Vec<_>>(),
    );
    m.add_row(
        "cap",
        &vars.iter().map(|&v| (v, 2.0)).collect::<Vec<_>>(),
        RowKind::Le,
        9.0,
    )
    .unwrap();
    let clean = BranchAndBound::new().solve(&m).unwrap();
    (m, clean.objective.unwrap())
}

#[test]
fn sparse_faults_recover_via_cold_rung_with_correct_answer() {
    let _g = fault::serial_guard();
    let (m, opt) = branchy();
    // A long period means isolated faults with clean stretches between
    // them: the ladder must recover every one without losing the optimum.
    fault::install(FaultPlan::singular_only(97));
    let mut degraded = 0usize;
    for _ in 0..8 {
        let sol = BranchAndBound::new().solve(&m).unwrap();
        if sol.status == MilpStatus::Optimal {
            assert!(
                (sol.objective.unwrap() - opt).abs() < 1e-6,
                "fault-hit search returned wrong optimum {:?}",
                sol.objective
            );
        }
        // Maximisation: the reported bound must never dip below the optimum.
        assert!(
            sol.best_bound >= opt - 1e-6,
            "unsound bound {} < optimum {opt}",
            sol.best_bound
        );
        if sol.degradation > Degradation::Exact {
            degraded += 1;
        }
    }
    fault::clear();
    assert!(degraded > 0, "faults with period 97 never surfaced in 8 runs");
}

#[test]
fn dense_faults_fold_interval_bounds_and_stay_sound() {
    let _g = fault::serial_guard();
    let (m, opt) = knapsack();
    // Period 2 hammers every other refactorisation: warm, cold and retry
    // rungs all fail regularly, forcing interval fallbacks. The search
    // must still terminate with a sound bound and honest degradation.
    fault::install(FaultPlan::singular_only(2));
    for _ in 0..20 {
        let sol = BranchAndBound::new().solve(&m).unwrap();
        assert!(
            sol.best_bound >= opt - 1e-6,
            "unsound bound {} < optimum {opt} (status {:?})",
            sol.best_bound,
            sol.status
        );
        if sol.status == MilpStatus::Optimal {
            assert!((sol.objective.unwrap() - opt).abs() < 1e-6);
        }
        if sol.status == MilpStatus::Aborted {
            assert!(
                sol.degradation >= Degradation::IntervalOnly,
                "aborted search must report at least interval degradation"
            );
        }
        // An incumbent, when claimed, must actually be feasible.
        if let Some(x) = &sol.x {
            assert!(m.is_feasible(x, 1e-6), "infeasible incumbent under faults");
        }
    }
    fault::clear();
}

#[test]
fn nan_poisoning_cannot_produce_a_wrong_verdict() {
    let _g = fault::serial_guard();
    let (m, opt) = branchy();
    fault::install(FaultPlan::nan_only(6));
    for _ in 0..10 {
        let sol = BranchAndBound::new().solve(&m).unwrap();
        assert!(sol.best_bound >= opt - 1e-6, "unsound bound under NaN");
        if sol.status == MilpStatus::Optimal {
            assert!(
                (sol.objective.unwrap() - opt).abs() < 1e-6,
                "poisoned search claimed wrong optimum {:?}",
                sol.objective
            );
        }
        assert_ne!(
            sol.status,
            MilpStatus::Infeasible,
            "feasible model declared infeasible under poisoning"
        );
    }
    fault::clear();
}

#[test]
fn stalled_pivots_plus_deadline_return_promptly_with_timed_out_tag() {
    let _g = fault::serial_guard();
    let (m, opt) = branchy();
    // Every pivot batch sleeps 2ms against a 10ms budget: expiry must be
    // observed inside the LP (not just between nodes) and reported as
    // TimeLimit with a TimedOut degradation and a still-sound bound.
    fault::install(FaultPlan::stall_only(1, 2));
    let t0 = Instant::now();
    let opts = MilpOptions {
        time_limit: Some(Duration::from_millis(10)),
        ..MilpOptions::default()
    };
    let sol = BranchAndBound::with_options(opts).solve(&m).unwrap();
    let elapsed = t0.elapsed();
    fault::clear();
    assert_eq!(sol.status, MilpStatus::TimeLimit);
    assert_eq!(sol.degradation, Degradation::TimedOut);
    assert!(
        elapsed < Duration::from_millis(1000),
        "deadline exit took {elapsed:?}"
    );
    assert!(sol.best_bound >= opt - 1e-6, "unsound bound at deadline");
}

#[test]
fn ambient_cancellation_stops_the_search() {
    let _g = fault::serial_guard();
    fault::clear();
    let (m, opt) = branchy();
    let d = Deadline::cancellable();
    d.cancel();
    let sol = BranchAndBound::new().with_deadline(d).solve(&m).unwrap();
    assert_eq!(sol.status, MilpStatus::TimeLimit);
    assert_eq!(sol.degradation, Degradation::TimedOut);
    assert!(sol.best_bound >= opt - 1e-6);
    assert!(sol.nodes <= 1, "cancelled search explored {} nodes", sol.nodes);
}

#[test]
fn fault_free_runs_report_exact_degradation() {
    let _g = fault::serial_guard();
    fault::clear();
    let (m, opt) = knapsack();
    let sol = BranchAndBound::new().solve(&m).unwrap();
    assert_eq!(sol.status, MilpStatus::Optimal);
    assert_eq!(sol.degradation, Degradation::Exact);
    assert!((sol.objective.unwrap() - opt).abs() < 1e-6);
}
