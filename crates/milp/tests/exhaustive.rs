//! Property tests: branch-and-bound must agree with exhaustive enumeration
//! on small all-binary programs.

use certnn_lp::{LpStatus, RowKind, Sense, Simplex};
use certnn_milp::{BranchAndBound, MilpModel, MilpStatus};
use proptest::prelude::*;

fn coeff() -> impl Strategy<Value = f64> {
    (-10i32..=10).prop_map(|v| v as f64 / 2.0)
}

/// Brute-force optimum over all 2^n binary assignments, with the continuous
/// tail solved by LP (here: none, pure binary). Returns `None` if infeasible.
fn brute_force(m: &MilpModel, n: usize) -> Option<f64> {
    let mut best: Option<f64> = None;
    for mask in 0..(1usize << n) {
        let x: Vec<f64> = (0..n)
            .map(|i| if mask & (1 << i) != 0 { 1.0 } else { 0.0 })
            .collect();
        if m.is_feasible(&x, 1e-9) {
            let v = m.eval_objective(&x);
            best = Some(match best {
                Some(b) => {
                    if m.sense() == Sense::Maximize {
                        b.max(v)
                    } else {
                        b.min(v)
                    }
                }
                None => v,
            });
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn branch_and_bound_matches_enumeration(
        n in 2usize..6,
        maximize in any::<bool>(),
        c in prop::collection::vec(coeff(), 6),
        a in prop::collection::vec(coeff(), 18),
        b in prop::collection::vec((-6i32..=10).prop_map(|v| v as f64), 3),
        n_rows in 1usize..4,
    ) {
        let sense = if maximize { Sense::Maximize } else { Sense::Minimize };
        let mut m = MilpModel::new(sense);
        let vars: Vec<_> = (0..n).map(|i| m.add_binary(&format!("b{i}"))).collect();
        m.set_objective(&vars.iter().enumerate().map(|(i, &v)| (v, c[i])).collect::<Vec<_>>());
        for r in 0..n_rows {
            let coeffs: Vec<_> = vars
                .iter()
                .enumerate()
                .map(|(i, &v)| (v, a[r * 6 + i]))
                .collect();
            m.add_row(&format!("r{r}"), &coeffs, RowKind::Le, b[r]).unwrap();
        }
        let sol = BranchAndBound::new().solve(&m).unwrap();
        let truth = brute_force(&m, n);
        match truth {
            Some(opt) => {
                prop_assert_eq!(sol.status, MilpStatus::Optimal);
                let got = sol.objective.unwrap();
                prop_assert!((got - opt).abs() < 1e-6, "got {} expected {}", got, opt);
                prop_assert!(m.is_feasible(&sol.x.unwrap(), 1e-6));
            }
            None => prop_assert_eq!(sol.status, MilpStatus::Infeasible),
        }
    }

    /// The MILP optimum can never beat its own LP relaxation.
    #[test]
    fn relaxation_bounds_milp(
        c in prop::collection::vec(coeff(), 4),
        a in prop::collection::vec(coeff(), 8),
        b in prop::collection::vec((1i32..=8).prop_map(|v| v as f64), 2),
    ) {
        let mut m = MilpModel::new(Sense::Maximize);
        let vars: Vec<_> = (0..4).map(|i| m.add_binary(&format!("b{i}"))).collect();
        m.set_objective(&vars.iter().enumerate().map(|(i, &v)| (v, c[i])).collect::<Vec<_>>());
        for r in 0..2 {
            let coeffs: Vec<_> = vars.iter().enumerate().map(|(i, &v)| (v, a[r * 4 + i])).collect();
            m.add_row(&format!("r{r}"), &coeffs, RowKind::Le, b[r]).unwrap();
        }
        let relax = Simplex::new().solve(m.relaxation()).unwrap();
        let sol = BranchAndBound::new().solve(&m).unwrap();
        if relax.status == LpStatus::Optimal && sol.status == MilpStatus::Optimal {
            prop_assert!(sol.objective.unwrap() <= relax.objective + 1e-6);
        }
    }
}
