//! SIMD-friendly dense-column and sparse-column kernels.
//!
//! These are the primitives underneath the factorized LP basis in
//! `certnn-lp` (LU with partial pivoting plus a product-form eta file):
//! contiguous scaled-axpy updates for the right-looking factorization,
//! gather/scatter variants for the sparse L/U columns, and the four
//! triangular solves (direct and transposed) over compressed-column
//! triangles. Everything works on plain `f64` slices so the loops stay
//! transparent to the autovectorizer; the gather/scatter kernels iterate
//! exactly the stored nonzeros, never the full dimension.
//!
//! The CSC triangle convention matches how an LU factorization is
//! sliced: column `k` of a *lower-unit* triangle stores only entries
//! strictly below the (implicit 1.0) diagonal, column `k` of an *upper*
//! triangle stores only entries strictly above the diagonal, with the
//! diagonal itself in a separate array. `col_ptr[k]..col_ptr[k + 1]`
//! indexes `(rows, vals)` exactly as in a CSC matrix.

/// `y += a * x` over equal-length slices.
///
/// The update of a right-looking LU factorization — subtracting a
/// multiple of the pivot subcolumn from each trailing subcolumn — is
/// exactly this kernel over contiguous column-major slices.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    if a == 0.0 {
        return;
    }
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

/// Scatter update `y[rows[k]] += a * vals[k]` for each stored nonzero.
///
/// This is one column-elimination step of a sparse triangular solve:
/// the solved entry's value `a` propagates into the rows its column
/// touches, and only those.
///
/// # Panics
///
/// Panics if `rows` and `vals` lengths differ, or an index is out of
/// range for `y`.
pub fn sparse_axpy(a: f64, rows: &[usize], vals: &[f64], y: &mut [f64]) {
    assert_eq!(rows.len(), vals.len(), "sparse_axpy length mismatch");
    if a == 0.0 {
        return;
    }
    for (&r, &v) in rows.iter().zip(vals) {
        y[r] += a * v;
    }
}

/// Gather dot product `Σ vals[k] * x[rows[k]]` over stored nonzeros.
///
/// The inner product of a transposed triangular solve: row `k` of the
/// transpose is column `k` of the stored triangle.
///
/// # Panics
///
/// Panics if `rows` and `vals` lengths differ, or an index is out of
/// range for `x`.
pub fn sparse_dot(rows: &[usize], vals: &[f64], x: &[f64]) -> f64 {
    assert_eq!(rows.len(), vals.len(), "sparse_dot length mismatch");
    let mut acc = 0.0;
    for (&r, &v) in rows.iter().zip(vals) {
        acc += v * x[r];
    }
    acc
}

/// In-place forward solve `L x = b` for a lower-unit CSC triangle.
///
/// `x` holds `b` on entry and the solution on exit. Column `k` stores
/// entries strictly below the unit diagonal. The scatter form skips
/// columns whose solved entry is exactly zero, so a sparse right-hand
/// side (an FTRAN on a unit or slack column) touches only the rows it
/// actually fills in.
///
/// # Panics
///
/// Panics if the triangle shape disagrees with `x.len()`.
pub fn solve_lower_unit(col_ptr: &[usize], rows: &[usize], vals: &[f64], x: &mut [f64]) {
    let n = x.len();
    assert_eq!(col_ptr.len(), n + 1, "solve_lower_unit shape mismatch");
    for k in 0..n {
        let xk = x[k];
        if xk != 0.0 {
            let (lo, hi) = (col_ptr[k], col_ptr[k + 1]);
            sparse_axpy(-xk, &rows[lo..hi], &vals[lo..hi], x);
        }
    }
}

/// In-place backward solve `U x = b` for an upper CSC triangle with an
/// explicit diagonal.
///
/// `x` holds `b` on entry and the solution on exit. Column `k` stores
/// entries strictly above the diagonal; `diag[k]` is the pivot. Zero
/// solved entries skip their scatter exactly like
/// [`solve_lower_unit`].
///
/// # Panics
///
/// Panics if the triangle shape disagrees with `x.len()`.
pub fn solve_upper(
    col_ptr: &[usize],
    rows: &[usize],
    vals: &[f64],
    diag: &[f64],
    x: &mut [f64],
) {
    let n = x.len();
    assert_eq!(col_ptr.len(), n + 1, "solve_upper shape mismatch");
    assert_eq!(diag.len(), n, "solve_upper diagonal mismatch");
    for k in (0..n).rev() {
        let xk = x[k] / diag[k];
        x[k] = xk;
        if xk != 0.0 {
            let (lo, hi) = (col_ptr[k], col_ptr[k + 1]);
            sparse_axpy(-xk, &rows[lo..hi], &vals[lo..hi], x);
        }
    }
}

/// In-place forward solve `Uᵀ x = b` for an upper CSC triangle with an
/// explicit diagonal (`Uᵀ` is lower triangular; its row `k` is the
/// stored column `k`).
///
/// # Panics
///
/// Panics if the triangle shape disagrees with `x.len()`.
pub fn solve_upper_transposed(
    col_ptr: &[usize],
    rows: &[usize],
    vals: &[f64],
    diag: &[f64],
    x: &mut [f64],
) {
    let n = x.len();
    assert_eq!(col_ptr.len(), n + 1, "solve_upper_transposed shape mismatch");
    assert_eq!(diag.len(), n, "solve_upper_transposed diagonal mismatch");
    for k in 0..n {
        let (lo, hi) = (col_ptr[k], col_ptr[k + 1]);
        x[k] = (x[k] - sparse_dot(&rows[lo..hi], &vals[lo..hi], x)) / diag[k];
    }
}

/// In-place backward solve `Lᵀ x = b` for a lower-unit CSC triangle
/// (`Lᵀ` is upper-unit triangular; its row `k` is the stored column
/// `k`).
///
/// # Panics
///
/// Panics if the triangle shape disagrees with `x.len()`.
pub fn solve_lower_unit_transposed(
    col_ptr: &[usize],
    rows: &[usize],
    vals: &[f64],
    x: &mut [f64],
) {
    let n = x.len();
    assert_eq!(col_ptr.len(), n + 1, "solve_lower_unit_transposed shape mismatch");
    for k in (0..n).rev() {
        let (lo, hi) = (col_ptr[k], col_ptr[k + 1]);
        x[k] -= sparse_dot(&rows[lo..hi], &vals[lo..hi], x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_adds_scaled_vector() {
        let x = [1.0, -2.0, 0.5];
        let mut y = [10.0, 10.0, 10.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 6.0, 11.0]);
    }

    #[test]
    fn axpy_zero_scale_is_identity() {
        let x = [f64::NAN; 2];
        let mut y = [1.0, 2.0];
        axpy(0.0, &x, &mut y);
        assert_eq!(y, [1.0, 2.0]);
    }

    #[test]
    fn sparse_kernels_touch_only_listed_rows() {
        let rows = [0usize, 3];
        let vals = [2.0, -1.0];
        let mut y = [0.0, 7.0, 7.0, 0.0];
        sparse_axpy(3.0, &rows, &vals, &mut y);
        assert_eq!(y, [6.0, 7.0, 7.0, -3.0]);
        assert_eq!(sparse_dot(&rows, &vals, &y), 2.0 * 6.0 + -1.0 * -3.0);
    }

    /// 3×3 lower-unit L and upper U used by the solve tests:
    /// L = [[1,0,0],[2,1,0],[0,3,1]], U = [[4,1,0],[0,5,2],[0,0,6]].
    fn lu_fixture() -> (Vec<usize>, Vec<usize>, Vec<f64>, Vec<usize>, Vec<usize>, Vec<f64>, Vec<f64>) {
        // L columns (strictly below diag): col0 -> (1, 2.0); col1 -> (2, 3.0).
        let l_ptr = vec![0, 1, 2, 2];
        let l_rows = vec![1, 2];
        let l_vals = vec![2.0, 3.0];
        // U columns (strictly above diag): col1 -> (0, 1.0); col2 -> (1, 2.0).
        let u_ptr = vec![0, 0, 1, 2];
        let u_rows = vec![0, 1];
        let u_vals = vec![1.0, 2.0];
        let u_diag = vec![4.0, 5.0, 6.0];
        (l_ptr, l_rows, l_vals, u_ptr, u_rows, u_vals, u_diag)
    }

    #[test]
    fn triangular_solves_match_dense_reference() {
        let (l_ptr, l_rows, l_vals, u_ptr, u_rows, u_vals, u_diag) = lu_fixture();
        // Forward: L x = [1, 0, 2] => x = [1, -2, 8].
        let mut x = [1.0, 0.0, 2.0];
        solve_lower_unit(&l_ptr, &l_rows, &l_vals, &mut x);
        assert_eq!(x, [1.0, -2.0, 8.0]);
        // Backward: U x = [4, 9, 6] => x3 = 1, x2 = (9-2)/5, x1 = (4-7/5)/4.
        let mut x = [4.0, 9.0, 6.0];
        solve_upper(&u_ptr, &u_rows, &u_vals, &u_diag, &mut x);
        assert!((x[2] - 1.0).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
        assert!((x[0] - 0.65).abs() < 1e-12);
    }

    #[test]
    fn transposed_solves_match_direct_solves_on_transposed_system() {
        let (l_ptr, l_rows, l_vals, u_ptr, u_rows, u_vals, u_diag) = lu_fixture();
        // Uᵀ x = b: dense Uᵀ = [[4,0,0],[1,5,0],[0,2,6]].
        let mut x = [8.0, 7.0, 10.0];
        solve_upper_transposed(&u_ptr, &u_rows, &u_vals, &u_diag, &mut x);
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
        assert!((x[2] - (10.0 - 2.0) / 6.0).abs() < 1e-12);
        // Lᵀ x = b: dense Lᵀ = [[1,2,0],[0,1,3],[0,0,1]].
        let mut x = [5.0, 7.0, 2.0];
        solve_lower_unit_transposed(&l_ptr, &l_rows, &l_vals, &mut x);
        assert!((x[2] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
        assert!((x[0] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn sparse_rhs_skips_work_but_stays_exact() {
        let (l_ptr, l_rows, l_vals, ..) = lu_fixture();
        // A unit right-hand side only fills in downstream of its index.
        let mut x = [0.0, 1.0, 0.0];
        solve_lower_unit(&l_ptr, &l_rows, &l_vals, &mut x);
        assert_eq!(x, [0.0, 1.0, -3.0]);
    }

    #[test]
    #[should_panic(expected = "axpy length mismatch")]
    fn axpy_rejects_length_mismatch() {
        axpy(1.0, &[1.0], &mut [1.0, 2.0]);
    }
}
