//! Random weight initialisation schemes.
//!
//! The schemes here match the classical recipes: uniform ranges scaled by
//! fan-in/fan-out for Xavier/Glorot (suited to `tanh` layers) and fan-in for
//! He (suited to ReLU layers). All functions are deterministic given the
//! caller-supplied RNG, which keeps training — and therefore the entire
//! Table II experiment — reproducible from a single seed.
//!
//! # Example
//!
//! ```
//! use certnn_linalg::init::{self, Scheme};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let w = init::matrix(4, 8, Scheme::He, &mut rng);
//! assert_eq!(w.shape(), (4, 8));
//! ```

use crate::{Matrix, Vector};
use rand::distributions::{Distribution, Uniform};
use rand::Rng;

/// Weight initialisation scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Scheme {
    /// Xavier/Glorot uniform: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
    ///
    /// The classical choice for saturating activations such as `tanh`.
    Xavier,
    /// He uniform: `U(-a, a)` with `a = sqrt(6 / fan_in)`.
    ///
    /// The classical choice for ReLU activations; default because the
    /// paper's case-study networks are ReLU networks.
    #[default]
    He,
    /// Plain uniform `U(-0.5, 0.5)`, independent of the layer shape.
    Uniform,
}

impl Scheme {
    /// Half-width of the sampling range for a layer with the given fan-in
    /// and fan-out.
    pub fn half_width(&self, fan_in: usize, fan_out: usize) -> f64 {
        match self {
            Scheme::Xavier => (6.0 / (fan_in + fan_out) as f64).sqrt(),
            Scheme::He => (6.0 / fan_in.max(1) as f64).sqrt(),
            Scheme::Uniform => 0.5,
        }
    }
}

/// Samples a `rows × cols` weight matrix (`rows` = fan-out, `cols` = fan-in).
pub fn matrix<R: Rng + ?Sized>(rows: usize, cols: usize, scheme: Scheme, rng: &mut R) -> Matrix {
    let a = scheme.half_width(cols, rows);
    let dist = Uniform::new_inclusive(-a, a);
    Matrix::from_fn(rows, cols, |_, _| dist.sample(rng))
}

/// Samples a bias vector of length `len` from `U(-a, a)` with the scheme's
/// half-width computed for fan-in `fan_in`.
pub fn bias<R: Rng + ?Sized>(len: usize, fan_in: usize, scheme: Scheme, rng: &mut R) -> Vector {
    let a = scheme.half_width(fan_in, len);
    let dist = Uniform::new_inclusive(-a, a);
    (0..len).map(|_| dist.sample(rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn half_widths_follow_formulas() {
        assert!((Scheme::Xavier.half_width(3, 3) - 1.0).abs() < 1e-12);
        assert!((Scheme::He.half_width(6, 10) - 1.0).abs() < 1e-12);
        assert_eq!(Scheme::Uniform.half_width(100, 100), 0.5);
    }

    #[test]
    fn he_half_width_guards_zero_fan_in() {
        assert!(Scheme::He.half_width(0, 10).is_finite());
    }

    #[test]
    fn matrix_entries_respect_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = matrix(10, 6, Scheme::He, &mut rng);
        let a = Scheme::He.half_width(6, 10);
        assert!(w.as_slice().iter().all(|x| x.abs() <= a));
    }

    #[test]
    fn bias_entries_respect_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let b = bias(32, 8, Scheme::Xavier, &mut rng);
        let a = Scheme::Xavier.half_width(8, 32);
        assert_eq!(b.len(), 32);
        assert!(b.iter().all(|x| x.abs() <= a));
    }

    #[test]
    fn same_seed_same_weights() {
        let w1 = matrix(4, 4, Scheme::He, &mut StdRng::seed_from_u64(42));
        let w2 = matrix(4, 4, Scheme::He, &mut StdRng::seed_from_u64(42));
        assert!(w1.approx_eq(&w2, 0.0));
    }

    #[test]
    fn different_seeds_differ() {
        let w1 = matrix(4, 4, Scheme::He, &mut StdRng::seed_from_u64(1));
        let w2 = matrix(4, 4, Scheme::He, &mut StdRng::seed_from_u64(2));
        assert!(!w1.approx_eq(&w2, 1e-9));
    }
}
