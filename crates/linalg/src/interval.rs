//! Closed-interval arithmetic.

use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// A closed interval `[lo, hi]` over `f64`.
///
/// `Interval` is the workhorse of the sound bound propagation in
/// `certnn-verify`: propagating input boxes through affine layers and ReLU
/// activations yields guaranteed pre-activation bounds, which in turn give
/// the big-M constants of the MILP encoding.
///
/// The arithmetic here is *outward-correct for exact arithmetic*: it computes
/// the exact image interval of each operation assuming `f64` arithmetic is
/// exact. (Directed rounding is out of scope; the verification layer widens
/// results by an epsilon margin instead.)
///
/// # Example
///
/// ```
/// use certnn_linalg::Interval;
///
/// let x = Interval::new(-1.0, 2.0);
/// let y = x * 3.0 + Interval::point(1.0);
/// assert_eq!(y, Interval::new(-2.0, 7.0));
/// assert_eq!(x.relu(), Interval::new(0.0, 2.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    lo: f64,
    hi: f64,
}

impl Interval {
    /// Creates the interval `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is `NaN`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(!lo.is_nan() && !hi.is_nan(), "interval bound is NaN");
        assert!(lo <= hi, "invalid interval [{lo}, {hi}]");
        Self { lo, hi }
    }

    /// Creates the degenerate interval `[v, v]`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is `NaN`.
    pub fn point(v: f64) -> Self {
        Self::new(v, v)
    }

    /// The interval `[0, 0]`.
    pub fn zero() -> Self {
        Self::point(0.0)
    }

    /// Lower bound.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Width `hi - lo`.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Midpoint `(lo + hi) / 2`.
    pub fn midpoint(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    /// Returns `true` if `v ∈ [lo, hi]`.
    pub fn contains(&self, v: f64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Returns `true` if `other ⊆ self`.
    pub fn contains_interval(&self, other: &Self) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// Smallest interval containing both `self` and `other`.
    pub fn hull(&self, other: &Self) -> Self {
        Self::new(self.lo.min(other.lo), self.hi.max(other.hi))
    }

    /// Intersection, or `None` if the intervals are disjoint.
    pub fn intersect(&self, other: &Self) -> Option<Self> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then(|| Self::new(lo, hi))
    }

    /// Image under the ReLU function `max(0, x)`.
    pub fn relu(&self) -> Self {
        Self::new(self.lo.max(0.0), self.hi.max(0.0))
    }

    /// Image under `tanh` (monotone, so just maps the endpoints).
    pub fn tanh(&self) -> Self {
        Self::new(self.lo.tanh(), self.hi.tanh())
    }

    /// Widens the interval by `margin` on each side.
    ///
    /// # Panics
    ///
    /// Panics if `margin < 0`.
    pub fn widened(&self, margin: f64) -> Self {
        assert!(margin >= 0.0, "widening margin must be non-negative");
        Self::new(self.lo - margin, self.hi + margin)
    }

    /// Returns `true` if the interval is entirely non-negative.
    pub fn is_nonnegative(&self) -> bool {
        self.lo >= 0.0
    }

    /// Returns `true` if the interval is entirely non-positive.
    pub fn is_nonpositive(&self) -> bool {
        self.hi <= 0.0
    }

    /// Returns `true` if the interval straddles zero strictly
    /// (`lo < 0 < hi`) — the "unstable neuron" case in ReLU verification.
    pub fn straddles_zero(&self) -> bool {
        self.lo < 0.0 && self.hi > 0.0
    }
}

impl Default for Interval {
    fn default() -> Self {
        Self::zero()
    }
}

impl Add for Interval {
    type Output = Interval;
    fn add(self, rhs: Interval) -> Interval {
        Interval::new(self.lo + rhs.lo, self.hi + rhs.hi)
    }
}

impl Add<f64> for Interval {
    type Output = Interval;
    fn add(self, rhs: f64) -> Interval {
        Interval::new(self.lo + rhs, self.hi + rhs)
    }
}

impl Sub for Interval {
    type Output = Interval;
    fn sub(self, rhs: Interval) -> Interval {
        Interval::new(self.lo - rhs.hi, self.hi - rhs.lo)
    }
}

impl Neg for Interval {
    type Output = Interval;
    fn neg(self) -> Interval {
        Interval::new(-self.hi, -self.lo)
    }
}

impl Mul<f64> for Interval {
    type Output = Interval;
    fn mul(self, rhs: f64) -> Interval {
        if rhs >= 0.0 {
            Interval::new(self.lo * rhs, self.hi * rhs)
        } else {
            Interval::new(self.hi * rhs, self.lo * rhs)
        }
    }
}

impl Mul for Interval {
    type Output = Interval;
    fn mul(self, rhs: Interval) -> Interval {
        let candidates = [
            self.lo * rhs.lo,
            self.lo * rhs.hi,
            self.hi * rhs.lo,
            self.hi * rhs.hi,
        ];
        let lo = candidates.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = candidates.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Interval::new(lo, hi)
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:.6}, {:.6}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let i = Interval::new(-1.0, 2.0);
        assert_eq!(i.lo(), -1.0);
        assert_eq!(i.hi(), 2.0);
        assert_eq!(i.width(), 3.0);
        assert_eq!(i.midpoint(), 0.5);
    }

    #[test]
    #[should_panic(expected = "invalid interval")]
    fn reversed_bounds_panic() {
        let _ = Interval::new(1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_bound_panics() {
        let _ = Interval::new(f64::NAN, 1.0);
    }

    #[test]
    fn containment_and_hull() {
        let a = Interval::new(0.0, 2.0);
        let b = Interval::new(1.0, 3.0);
        assert!(a.contains(1.5));
        assert!(!a.contains(2.5));
        assert!(a.hull(&b) == Interval::new(0.0, 3.0));
        assert!(a.hull(&b).contains_interval(&a));
        assert!(a.hull(&b).contains_interval(&b));
    }

    #[test]
    fn intersection() {
        let a = Interval::new(0.0, 2.0);
        let b = Interval::new(1.0, 3.0);
        assert_eq!(a.intersect(&b), Some(Interval::new(1.0, 2.0)));
        let c = Interval::new(5.0, 6.0);
        assert_eq!(a.intersect(&c), None);
    }

    #[test]
    fn addition_and_subtraction() {
        let a = Interval::new(-1.0, 1.0);
        let b = Interval::new(2.0, 3.0);
        assert_eq!(a + b, Interval::new(1.0, 4.0));
        assert_eq!(a - b, Interval::new(-4.0, -1.0));
        assert_eq!(a + 10.0, Interval::new(9.0, 11.0));
        assert_eq!(-b, Interval::new(-3.0, -2.0));
    }

    #[test]
    fn scalar_multiplication_flips_for_negative() {
        let a = Interval::new(-1.0, 2.0);
        assert_eq!(a * 2.0, Interval::new(-2.0, 4.0));
        assert_eq!(a * -1.0, Interval::new(-2.0, 1.0));
        assert_eq!(a * 0.0, Interval::zero());
    }

    #[test]
    fn interval_multiplication_covers_all_sign_cases() {
        let pos = Interval::new(1.0, 2.0);
        let neg = Interval::new(-3.0, -1.0);
        let mixed = Interval::new(-1.0, 2.0);
        assert_eq!(pos * pos, Interval::new(1.0, 4.0));
        assert_eq!(pos * neg, Interval::new(-6.0, -1.0));
        assert_eq!(mixed * mixed, Interval::new(-2.0, 4.0));
    }

    #[test]
    fn relu_clamps_correctly() {
        assert_eq!(Interval::new(-2.0, -1.0).relu(), Interval::zero().hull(&Interval::zero()));
        assert_eq!(Interval::new(-1.0, 2.0).relu(), Interval::new(0.0, 2.0));
        assert_eq!(Interval::new(1.0, 2.0).relu(), Interval::new(1.0, 2.0));
    }

    #[test]
    fn tanh_preserves_ordering() {
        let i = Interval::new(-1.0, 1.0).tanh();
        assert!(i.lo() < 0.0 && i.hi() > 0.0);
        assert!((i.lo() + i.hi()).abs() < 1e-12); // tanh is odd
    }

    #[test]
    fn sign_queries() {
        assert!(Interval::new(0.0, 1.0).is_nonnegative());
        assert!(Interval::new(-1.0, 0.0).is_nonpositive());
        assert!(Interval::new(-1.0, 1.0).straddles_zero());
        assert!(!Interval::new(0.0, 1.0).straddles_zero());
    }

    #[test]
    fn widened_grows_both_sides() {
        let i = Interval::new(0.0, 1.0).widened(0.5);
        assert_eq!(i, Interval::new(-0.5, 1.5));
    }
}
