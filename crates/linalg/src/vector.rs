//! Owned dense vectors of `f64`.

use crate::ShapeError;
use std::fmt;
use std::iter::FromIterator;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub};

/// An owned dense vector of `f64` values.
///
/// `Vector` is the exchange type between the simulator's feature extractor,
/// the neural-network layers and the verification encoders. It supports
/// elementwise arithmetic, dot products and the usual reductions.
///
/// # Example
///
/// ```
/// use certnn_linalg::Vector;
///
/// let v = Vector::from(vec![3.0, -4.0]);
/// assert_eq!(v.norm2(), 5.0);
/// assert_eq!(v.map(f64::abs).sum(), 7.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Vector {
    data: Vec<f64>,
}

impl Vector {
    /// Creates a vector of `len` zeros.
    pub fn zeros(len: usize) -> Self {
        Self {
            data: vec![0.0; len],
        }
    }

    /// Creates a vector of `len` ones.
    pub fn ones(len: usize) -> Self {
        Self {
            data: vec![1.0; len],
        }
    }

    /// Creates a vector with every entry set to `value`.
    pub fn filled(len: usize, value: f64) -> Self {
        Self {
            data: vec![value; len],
        }
    }

    /// Creates a standard-basis vector of dimension `len` with a `1.0` at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn basis(len: usize, index: usize) -> Self {
        assert!(index < len, "basis index {index} out of range for len {len}");
        let mut v = Self::zeros(len);
        v.data[index] = 1.0;
        v
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the vector has no entries.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows the underlying slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrows the underlying slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the vector and returns the underlying `Vec<f64>`.
    pub fn into_inner(self) -> Vec<f64> {
        self.data
    }

    /// Returns the entry at `index`, or `None` if out of range.
    pub fn get(&self, index: usize) -> Option<f64> {
        self.data.get(index).copied()
    }

    /// Iterates over the entries.
    pub fn iter(&self) -> std::slice::Iter<'_, f64> {
        self.data.iter()
    }

    /// Dot product with `other`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the lengths differ.
    pub fn dot(&self, other: &Self) -> Result<f64, ShapeError> {
        if self.len() != other.len() {
            return Err(ShapeError::new("dot", (self.len(), 1), (other.len(), 1)));
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a * b)
            .sum())
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the lengths differ.
    pub fn hadamard(&self, other: &Self) -> Result<Self, ShapeError> {
        if self.len() != other.len() {
            return Err(ShapeError::new(
                "hadamard",
                (self.len(), 1),
                (other.len(), 1),
            ));
        }
        Ok(Self {
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a * b)
                .collect(),
        })
    }

    /// Applies `f` to every entry, returning a new vector.
    pub fn map<F: FnMut(f64) -> f64>(&self, mut f: F) -> Self {
        Self {
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every entry in place.
    pub fn map_in_place<F: FnMut(f64) -> f64>(&mut self, mut f: F) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Euclidean (L2) norm.
    pub fn norm2(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum norm (L∞).
    pub fn norm_inf(&self) -> f64 {
        self.data.iter().fold(0.0, |m, x| m.max(x.abs()))
    }

    /// Index of the maximum entry, or `None` for an empty vector.
    ///
    /// Ties resolve to the first maximal index; `NaN` entries are skipped.
    pub fn argmax(&self) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (i, &x) in self.data.iter().enumerate() {
            if x.is_nan() {
                continue;
            }
            match best {
                Some((_, b)) if x <= b => {}
                _ => best = Some((i, x)),
            }
        }
        best.map(|(i, _)| i)
    }

    /// Returns `a * self + b * other`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the lengths differ.
    pub fn axpby(&self, a: f64, other: &Self, b: f64) -> Result<Self, ShapeError> {
        if self.len() != other.len() {
            return Err(ShapeError::new("axpby", (self.len(), 1), (other.len(), 1)));
        }
        Ok(Self {
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(x, y)| a * x + b * y)
                .collect(),
        })
    }

    /// Returns a scaled copy (`self * scalar`).
    pub fn scaled(&self, scalar: f64) -> Self {
        self.map(|x| x * scalar)
    }

    /// Returns `true` if every entry of `self` is within `tol` of the
    /// corresponding entry of `other` (and lengths agree).
    pub fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        self.len() == other.len()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol)
    }
}

impl From<Vec<f64>> for Vector {
    fn from(data: Vec<f64>) -> Self {
        Self { data }
    }
}

impl From<&[f64]> for Vector {
    fn from(data: &[f64]) -> Self {
        Self {
            data: data.to_vec(),
        }
    }
}

impl FromIterator<f64> for Vector {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Self {
            data: iter.into_iter().collect(),
        }
    }
}

impl Extend<f64> for Vector {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        self.data.extend(iter);
    }
}

impl Index<usize> for Vector {
    type Output = f64;
    fn index(&self, index: usize) -> &f64 {
        &self.data[index]
    }
}

impl IndexMut<usize> for Vector {
    fn index_mut(&mut self, index: usize) -> &mut f64 {
        &mut self.data[index]
    }
}

impl IntoIterator for Vector {
    type Item = f64;
    type IntoIter = std::vec::IntoIter<f64>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.into_iter()
    }
}

impl<'a> IntoIterator for &'a Vector {
    type Item = &'a f64;
    type IntoIter = std::slice::Iter<'a, f64>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

impl Add for &Vector {
    type Output = Vector;
    /// # Panics
    ///
    /// Panics if the lengths differ; use [`Vector::axpby`] for a fallible sum.
    fn add(self, rhs: &Vector) -> Vector {
        self.axpby(1.0, rhs, 1.0).expect("vector add: length mismatch")
    }
}

impl Sub for &Vector {
    type Output = Vector;
    /// # Panics
    ///
    /// Panics if the lengths differ; use [`Vector::axpby`] for a fallible difference.
    fn sub(self, rhs: &Vector) -> Vector {
        self.axpby(1.0, rhs, -1.0)
            .expect("vector sub: length mismatch")
    }
}

impl Mul<f64> for &Vector {
    type Output = Vector;
    fn mul(self, rhs: f64) -> Vector {
        self.scaled(rhs)
    }
}

impl Neg for &Vector {
    type Output = Vector;
    fn neg(self) -> Vector {
        self.scaled(-1.0)
    }
}

impl AddAssign<&Vector> for Vector {
    /// # Panics
    ///
    /// Panics if the lengths differ.
    fn add_assign(&mut self, rhs: &Vector) {
        assert_eq!(self.len(), rhs.len(), "vector add_assign: length mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }
}

impl fmt::Display for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, x) in self.data.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{x:.4}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_ones_filled_basis() {
        assert_eq!(Vector::zeros(3).as_slice(), &[0.0, 0.0, 0.0]);
        assert_eq!(Vector::ones(2).as_slice(), &[1.0, 1.0]);
        assert_eq!(Vector::filled(2, 7.5).as_slice(), &[7.5, 7.5]);
        assert_eq!(Vector::basis(3, 1).as_slice(), &[0.0, 1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "basis index")]
    fn basis_out_of_range_panics() {
        let _ = Vector::basis(2, 2);
    }

    #[test]
    fn dot_and_shape_error() {
        let a = Vector::from(vec![1.0, 2.0, 3.0]);
        let b = Vector::from(vec![4.0, 5.0, 6.0]);
        assert_eq!(a.dot(&b).unwrap(), 32.0);
        let short = Vector::zeros(2);
        assert!(a.dot(&short).is_err());
    }

    #[test]
    fn hadamard_product() {
        let a = Vector::from(vec![1.0, -2.0]);
        let b = Vector::from(vec![3.0, 4.0]);
        assert_eq!(a.hadamard(&b).unwrap().as_slice(), &[3.0, -8.0]);
    }

    #[test]
    fn norms() {
        let v = Vector::from(vec![3.0, -4.0]);
        assert_eq!(v.norm2(), 5.0);
        assert_eq!(v.norm_inf(), 4.0);
    }

    #[test]
    fn argmax_ignores_nan_and_breaks_ties_first() {
        let v = Vector::from(vec![f64::NAN, 2.0, 2.0, 1.0]);
        assert_eq!(v.argmax(), Some(1));
        assert_eq!(Vector::zeros(0).argmax(), None);
        let all_nan = Vector::from(vec![f64::NAN]);
        assert_eq!(all_nan.argmax(), None);
    }

    #[test]
    fn axpby_combines_linearly() {
        let a = Vector::from(vec![1.0, 2.0]);
        let b = Vector::from(vec![10.0, 20.0]);
        assert_eq!(a.axpby(2.0, &b, 0.5).unwrap().as_slice(), &[7.0, 14.0]);
    }

    #[test]
    fn operators_add_sub_mul_neg() {
        let a = Vector::from(vec![1.0, 2.0]);
        let b = Vector::from(vec![3.0, 5.0]);
        assert_eq!((&a + &b).as_slice(), &[4.0, 7.0]);
        assert_eq!((&b - &a).as_slice(), &[2.0, 3.0]);
        assert_eq!((&a * 3.0).as_slice(), &[3.0, 6.0]);
        assert_eq!((-&a).as_slice(), &[-1.0, -2.0]);
        let mut c = a.clone();
        c += &b;
        assert_eq!(c.as_slice(), &[4.0, 7.0]);
    }

    #[test]
    fn map_and_map_in_place() {
        let v = Vector::from(vec![-1.0, 2.0]);
        assert_eq!(v.map(f64::abs).as_slice(), &[1.0, 2.0]);
        let mut w = v.clone();
        w.map_in_place(|x| x * x);
        assert_eq!(w.as_slice(), &[1.0, 4.0]);
    }

    #[test]
    fn collect_and_extend() {
        let v: Vector = (0..3).map(|i| i as f64).collect();
        assert_eq!(v.as_slice(), &[0.0, 1.0, 2.0]);
        let mut w = v;
        w.extend([9.0]);
        assert_eq!(w.len(), 4);
        assert_eq!(w[3], 9.0);
    }

    #[test]
    fn approx_eq_tolerance() {
        let a = Vector::from(vec![1.0, 2.0]);
        let b = Vector::from(vec![1.0 + 1e-9, 2.0 - 1e-9]);
        assert!(a.approx_eq(&b, 1e-8));
        assert!(!a.approx_eq(&b, 1e-12));
        assert!(!a.approx_eq(&Vector::zeros(3), 1.0));
    }

    #[test]
    fn display_is_nonempty() {
        let v = Vector::from(vec![1.0, 2.0]);
        assert!(!format!("{v}").is_empty());
    }
}
