//! Dense linear algebra, interval arithmetic and statistics primitives for
//! the `certnn` workspace.
//!
//! This crate is deliberately small and dependency-free (apart from [`rand`]
//! for initialisers): every other crate in the workspace — the neural-network
//! library, the highway simulator, the bound-propagation engine — builds on
//! the types defined here.
//!
//! # Overview
//!
//! * [`Vector`] — an owned dense vector of `f64` with the usual elementwise
//!   and reduction operations.
//! * [`Matrix`] — a row-major dense matrix with matrix/vector products,
//!   transposes and row/column views.
//! * [`Interval`] — closed-interval arithmetic used by the sound bound
//!   propagation in `certnn-verify`.
//! * [`kernels`] — scaled-axpy, gather/scatter and CSC triangular-solve
//!   kernels underneath the factorized LP basis in `certnn-lp`.
//! * [`init`] — weight initialisation schemes (Xavier/Glorot, He, uniform).
//! * [`stats`] — descriptive statistics (mean, variance, Pearson correlation,
//!   histograms) used by the traceability analyses in `certnn-trace`.
//!
//! # Example
//!
//! ```
//! use certnn_linalg::{Matrix, Vector};
//!
//! # fn main() -> Result<(), certnn_linalg::ShapeError> {
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
//! let x = Vector::from(vec![1.0, -1.0]);
//! let y = a.mul_vector(&x)?;
//! assert_eq!(y.as_slice(), &[-1.0, -1.0]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod interval;
mod matrix;
mod vector;

pub mod init;
pub mod kernels;
pub mod stats;

pub use interval::Interval;
pub use matrix::Matrix;
pub use vector::Vector;

use std::error::Error;
use std::fmt;

/// Error returned when the shapes of linear-algebra operands do not agree.
///
/// # Example
///
/// ```
/// use certnn_linalg::{Matrix, Vector};
/// let a = Matrix::zeros(2, 3);
/// let x = Vector::zeros(2);
/// assert!(a.mul_vector(&x).is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    op: &'static str,
    lhs: (usize, usize),
    rhs: (usize, usize),
}

impl ShapeError {
    /// Creates a new shape error for operation `op` with the two offending
    /// shapes, given as `(rows, cols)`; vectors use `(len, 1)`.
    pub fn new(op: &'static str, lhs: (usize, usize), rhs: (usize, usize)) -> Self {
        Self { op, lhs, rhs }
    }

    /// The operation that failed (e.g. `"mul_vector"`).
    pub fn op(&self) -> &'static str {
        self.op
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shape mismatch in {}: {}x{} vs {}x{}",
            self.op, self.lhs.0, self.lhs.1, self.rhs.0, self.rhs.1
        )
    }
}

impl Error for ShapeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_error_display_mentions_operation_and_shapes() {
        let e = ShapeError::new("matmul", (2, 3), (4, 5));
        let s = e.to_string();
        assert!(s.contains("matmul"));
        assert!(s.contains("2x3"));
        assert!(s.contains("4x5"));
    }

    #[test]
    fn shape_error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShapeError>();
    }
}
