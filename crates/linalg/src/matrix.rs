//! Row-major dense matrices of `f64`.

use crate::{ShapeError, Vector};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A row-major dense matrix of `f64` values.
///
/// Network weight matrices, simplex tableaus and attribution maps all use
/// this type. Storage is a single contiguous `Vec<f64>`; entry `(r, c)` lives
/// at offset `r * cols + c`.
///
/// # Example
///
/// ```
/// use certnn_linalg::{Matrix, Vector};
///
/// # fn main() -> Result<(), certnn_linalg::ShapeError> {
/// let w = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, -1.0]])?;
/// let x = Vector::from(vec![2.0, 3.0]);
/// assert_eq!(w.mul_vector(&x)?.as_slice(), &[2.0, -3.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major flat buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `data.len() != rows * cols`.
    pub fn from_flat(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, ShapeError> {
        if data.len() != rows * cols {
            return Err(ShapeError::new("from_flat", (rows, cols), (data.len(), 1)));
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a matrix from a slice of equally long rows.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the rows have differing lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, ShapeError> {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            if row.len() != c {
                return Err(ShapeError::new("from_rows", (r, c), (1, row.len())));
            }
            data.extend_from_slice(row);
        }
        Ok(Self {
            rows: r,
            cols: c,
            data,
        })
    }

    /// Creates a matrix by evaluating `f(row, col)` for every entry.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrows the row-major flat buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrows the row-major flat buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row {r} out of range for {} rows", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row {r} out of range for {} rows", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new [`Vector`].
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.cols()`.
    pub fn column(&self, c: usize) -> Vector {
        assert!(c < self.cols, "col {c} out of range for {} cols", self.cols);
        (0..self.rows).map(|r| self.data[r * self.cols + c]).collect()
    }

    /// Matrix-vector product `self * x`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `x.len() != self.cols()`.
    pub fn mul_vector(&self, x: &Vector) -> Result<Vector, ShapeError> {
        if x.len() != self.cols {
            return Err(ShapeError::new(
                "mul_vector",
                (self.rows, self.cols),
                (x.len(), 1),
            ));
        }
        let xs = x.as_slice();
        Ok((0..self.rows)
            .map(|r| {
                self.row(r)
                    .iter()
                    .zip(xs)
                    .map(|(a, b)| a * b)
                    .sum::<f64>()
            })
            .collect())
    }

    /// Transposed matrix-vector product `selfᵀ * x`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `x.len() != self.rows()`.
    pub fn mul_vector_transposed(&self, x: &Vector) -> Result<Vector, ShapeError> {
        if x.len() != self.rows {
            return Err(ShapeError::new(
                "mul_vector_transposed",
                (self.cols, self.rows),
                (x.len(), 1),
            ));
        }
        let mut out = vec![0.0; self.cols];
        for (r, &xr) in x.as_slice().iter().enumerate() {
            for (c, out_c) in out.iter_mut().enumerate() {
                *out_c += self.data[r * self.cols + c] * xr;
            }
        }
        Ok(out.into_iter().collect())
    }

    /// Matrix product `self * other`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `self.cols() != other.rows()`.
    pub fn mul_matrix(&self, other: &Self) -> Result<Self, ShapeError> {
        if self.cols != other.rows {
            return Err(ShapeError::new(
                "mul_matrix",
                (self.rows, self.cols),
                (other.rows, other.cols),
            ));
        }
        let mut out = Self::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[r * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                for c in 0..other.cols {
                    out.data[r * other.cols + c] += a * other.data[k * other.cols + c];
                }
            }
        }
        Ok(out)
    }

    /// Returns the transpose.
    pub fn transposed(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |r, c| self.data[c * self.cols + r])
    }

    /// Outer product `x * yᵀ` of two vectors.
    pub fn outer(x: &Vector, y: &Vector) -> Self {
        Self::from_fn(x.len(), y.len(), |r, c| x[r] * y[c])
    }

    /// Applies `f` to every entry, returning a new matrix.
    pub fn map<F: FnMut(f64) -> f64>(&self, mut f: F) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Adds `scale * other` to `self` in place.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the shapes differ.
    pub fn add_scaled(&mut self, other: &Self, scale: f64) -> Result<(), ShapeError> {
        if self.shape() != other.shape() {
            return Err(ShapeError::new("add_scaled", self.shape(), other.shape()));
        }
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
        Ok(())
    }

    /// Frobenius norm (square root of the sum of squared entries).
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Returns `true` if every entry of `self` is within `tol` of the
    /// corresponding entry of `other` (and shapes agree).
    pub fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of range");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of range");
        &mut self.data[r * self.cols + c]
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    /// # Panics
    ///
    /// Panics if the shapes differ; use [`Matrix::add_scaled`] for a fallible sum.
    fn add(self, rhs: &Matrix) -> Matrix {
        let mut out = self.clone();
        out.add_scaled(rhs, 1.0).expect("matrix add: shape mismatch");
        out
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    /// # Panics
    ///
    /// Panics if the shapes differ; use [`Matrix::add_scaled`] for a fallible difference.
    fn sub(self, rhs: &Matrix) -> Matrix {
        let mut out = self.clone();
        out.add_scaled(rhs, -1.0).expect("matrix sub: shape mismatch");
        out
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: f64) -> Matrix {
        self.map(|x| x * rhs)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[{}x{}]", self.rows, self.cols)?;
        for r in 0..self.rows {
            for (c, x) in self.row(r).iter().enumerate() {
                if c > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{x:9.4}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap()
    }

    #[test]
    fn construction_and_shape() {
        let m = sample();
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m[(1, 2)], 6.0);
        assert_eq!(Matrix::identity(3)[(2, 2)], 1.0);
        assert_eq!(Matrix::identity(3)[(0, 2)], 0.0);
    }

    #[test]
    fn from_flat_validates_length() {
        assert!(Matrix::from_flat(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_flat(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        let short: &[f64] = &[1.0];
        let long: &[f64] = &[1.0, 2.0];
        assert!(Matrix::from_rows(&[short, long]).is_err());
    }

    #[test]
    fn row_and_column_access() {
        let m = sample();
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.column(2).as_slice(), &[3.0, 6.0]);
    }

    #[test]
    fn mul_vector_matches_manual() {
        let m = sample();
        let x = Vector::from(vec![1.0, 0.0, -1.0]);
        assert_eq!(m.mul_vector(&x).unwrap().as_slice(), &[-2.0, -2.0]);
        assert!(m.mul_vector(&Vector::zeros(2)).is_err());
    }

    #[test]
    fn mul_vector_transposed_matches_explicit_transpose() {
        let m = sample();
        let x = Vector::from(vec![1.0, 2.0]);
        let via_method = m.mul_vector_transposed(&x).unwrap();
        let via_transpose = m.transposed().mul_vector(&x).unwrap();
        assert!(via_method.approx_eq(&via_transpose, 1e-12));
    }

    #[test]
    fn mul_matrix_identity_is_noop() {
        let m = sample();
        let id = Matrix::identity(3);
        assert!(m.mul_matrix(&id).unwrap().approx_eq(&m, 0.0));
        assert!(m.mul_matrix(&Matrix::identity(2)).is_err());
    }

    #[test]
    fn transpose_involution() {
        let m = sample();
        assert!(m.transposed().transposed().approx_eq(&m, 0.0));
    }

    #[test]
    fn outer_product() {
        let x = Vector::from(vec![1.0, 2.0]);
        let y = Vector::from(vec![3.0, 4.0, 5.0]);
        let o = Matrix::outer(&x, &y);
        assert_eq!(o.shape(), (2, 3));
        assert_eq!(o[(1, 2)], 10.0);
    }

    #[test]
    fn add_scaled_and_operators() {
        let a = sample();
        let b = sample();
        let sum = &a + &b;
        assert_eq!(sum[(0, 0)], 2.0);
        let diff = &sum - &a;
        assert!(diff.approx_eq(&a, 1e-12));
        let scaled = &a * 2.0;
        assert_eq!(scaled[(1, 2)], 12.0);
    }

    #[test]
    fn frobenius_norm_of_identity() {
        assert!((Matrix::identity(4).frobenius_norm() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_out_of_range_panics() {
        let m = sample();
        let _ = m[(2, 0)];
    }

    #[test]
    fn display_contains_shape() {
        assert!(format!("{}", sample()).contains("[2x3]"));
    }
}
