//! Descriptive statistics used by the traceability analyses.
//!
//! The neuron-to-feature traceability pillar of the paper associates neurons
//! with input features by statistical dependence of activations on features.
//! This module supplies the required primitives: running mean/variance
//! (Welford), Pearson correlation, and fixed-width histograms.
//!
//! # Example
//!
//! ```
//! use certnn_linalg::stats::{pearson, Summary};
//!
//! let xs = [1.0, 2.0, 3.0, 4.0];
//! let ys = [2.0, 4.0, 6.0, 8.0];
//! assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
//!
//! let s: Summary = xs.iter().copied().collect();
//! assert_eq!(s.mean(), 2.5);
//! ```

use std::iter::FromIterator;

/// Running mean/variance accumulator (Welford's algorithm).
///
/// Numerically stable for long activation streams; used to summarise neuron
/// activations across a dataset without storing them all.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean, or `0.0` if empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance, or `0.0` with fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation, or `+∞` if empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation, or `−∞` if empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another summary into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Default for Summary {
    /// Identical to [`Summary::new`] — in particular `min()` starts at
    /// `+∞` and `max()` at `−∞`, not zero (a derived `Default` would
    /// silently corrupt extrema of all-positive data).
    fn default() -> Self {
        Self::new()
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

/// Pearson correlation coefficient of two equally long samples.
///
/// Returns `None` if the slices differ in length, have fewer than two
/// elements, or either sample has zero variance (correlation undefined).
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx.sqrt() * syy.sqrt()))
}

/// A fixed-width histogram over a closed range.
///
/// Out-of-range observations are clamped into the first/last bin, so the
/// total count always equals the number of `push` calls — convenient when
/// rendering GMM densities whose tails exceed the plotted range.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi]` with `bins` equal-width bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "histogram range must be non-degenerate");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
        }
    }

    /// Adds an observation (clamped into range).
    pub fn push(&mut self, x: f64) {
        let bins = self.counts.len();
        let t = ((x - self.lo) / (self.hi - self.lo) * bins as f64).floor();
        let idx = (t as i64).clamp(0, bins as i64 - 1) as usize;
        self.counts[idx] += 1;
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Center of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= bins`.
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.counts.len(), "bin index out of range");
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_matches_direct_formulas() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s: Summary = data.iter().copied().collect();
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn summary_merge_equals_single_pass() {
        let all = [1.0, 2.0, 3.0, 10.0, -5.0, 0.5];
        let single: Summary = all.iter().copied().collect();
        let mut a: Summary = all[..3].iter().copied().collect();
        let b: Summary = all[3..].iter().copied().collect();
        a.merge(&b);
        assert!((a.mean() - single.mean()).abs() < 1e-12);
        assert!((a.variance() - single.variance()).abs() < 1e-12);
        assert_eq!(a.count(), single.count());
        assert_eq!(a.min(), single.min());
        assert_eq!(a.max(), single.max());
    }

    #[test]
    fn default_matches_new_including_extrema() {
        // Regression: a derived Default had min = max = 0.0, making the
        // minimum of all-positive data report as 0.
        let d = Summary::default();
        assert_eq!(d, Summary::new());
        let mut s = Summary::default();
        s.push(5.0);
        s.push(7.0);
        assert_eq!(s.min(), 5.0);
        assert_eq!(s.max(), 7.0);
    }

    #[test]
    fn summary_merge_with_empty_is_identity() {
        let mut a: Summary = [1.0, 2.0].iter().copied().collect();
        let before = a;
        a.merge(&Summary::new());
        assert_eq!(a, before);
        let mut empty = Summary::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn pearson_perfect_and_anti_correlation() {
        let xs = [1.0, 2.0, 3.0];
        assert!((pearson(&xs, &[2.0, 4.0, 6.0]).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&xs, &[3.0, 2.0, 1.0]).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate_cases() {
        assert_eq!(pearson(&[1.0], &[1.0]), None);
        assert_eq!(pearson(&[1.0, 2.0], &[1.0]), None);
        assert_eq!(pearson(&[1.0, 1.0], &[1.0, 2.0]), None);
    }

    #[test]
    fn histogram_bins_and_clamping() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [-1.0, 0.0, 3.0, 9.9, 100.0] {
            h.push(x);
        }
        assert_eq!(h.total(), 5);
        assert_eq!(h.counts()[0], 2); // -1 clamped + 0.0
        assert_eq!(h.counts()[4], 2); // 9.9 + 100 clamped
        assert_eq!(h.counts()[1], 1); // 3.0
        assert!((h.bin_center(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_zero_bins_panics() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }
}
