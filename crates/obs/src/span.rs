//! Span tracing: RAII guards writing into per-thread ring buffers.
//!
//! The hot path (opening/closing a span) touches only thread-local state
//! plus one relaxed atomic for the span id — no locks. Each thread owns a
//! bounded ring; when it wraps, the oldest records are dropped (and
//! counted). Rings are flushed into a global collector when the thread
//! exits or when [`flush_current_thread`] is called.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::{enabled, now_ns};

/// Default per-thread ring capacity (records).
const DEFAULT_RING_CAP: usize = 16_384;

static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);
static RING_CAP: AtomicUsize = AtomicUsize::new(DEFAULT_RING_CAP);
static COLLECTOR: Mutex<Collected> = Mutex::new(Collected {
    records: Vec::new(),
    dropped: 0,
});

struct Collected {
    records: Vec<Record>,
    dropped: u64,
}

/// A value attached to an [`event`] record.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer field.
    U64(u64),
    /// Signed integer field.
    I64(i64),
    /// Floating-point field.
    F64(f64),
    /// String field (escaped on render).
    Str(String),
    /// Boolean field.
    Bool(bool),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

/// One trace record: a completed span or a point-in-time event.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A completed span.
    Span {
        /// Unique span id (process-wide).
        id: u64,
        /// Parent span id, if any (same thread stack or explicit cross-thread parent).
        parent: Option<u64>,
        /// Static span name, e.g. `"lp.solve_warm"`.
        name: &'static str,
        /// Observability thread id (dense, assigned on first record).
        thread: u64,
        /// Start, nanoseconds since the obs epoch.
        start_ns: u64,
        /// End, nanoseconds since the obs epoch.
        end_ns: u64,
    },
    /// A point-in-time structured event.
    Event {
        /// Static event name, e.g. `"bab.worker_died"`.
        name: &'static str,
        /// Observability thread id.
        thread: u64,
        /// Timestamp, nanoseconds since the obs epoch.
        at_ns: u64,
        /// Key/value payload.
        fields: Vec<(&'static str, FieldValue)>,
    },
}

struct ThreadObs {
    thread_id: u64,
    ring: VecDeque<Record>,
    cap: usize,
    dropped: u64,
    span_stack: Vec<u64>,
}

impl ThreadObs {
    fn new() -> Self {
        ThreadObs {
            thread_id: NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed),
            ring: VecDeque::new(),
            cap: RING_CAP.load(Ordering::Relaxed).max(1),
            dropped: 0,
            span_stack: Vec::new(),
        }
    }

    fn push(&mut self, rec: Record) {
        if self.ring.len() >= self.cap {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(rec);
    }

    fn flush(&mut self) {
        if self.ring.is_empty() && self.dropped == 0 {
            return;
        }
        let mut coll = COLLECTOR.lock().unwrap_or_else(|e| e.into_inner());
        coll.records.extend(self.ring.drain(..));
        coll.dropped += self.dropped;
        self.dropped = 0;
    }
}

impl Drop for ThreadObs {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static TLS: RefCell<ThreadObs> = RefCell::new(ThreadObs::new());
}

/// Set the per-thread ring capacity. Affects threads whose ring has not
/// been created yet (each thread sizes its ring on first record), so call
/// it before spawning instrumented threads. Intended for tests.
pub fn set_ring_capacity(cap: usize) {
    RING_CAP.store(cap.max(1), Ordering::Relaxed);
}

/// RAII guard for an open span; records the span into the thread-local
/// ring when dropped. Not `Send` — a span belongs to the thread that
/// opened it (use [`span_child_of`] to parent across threads).
#[must_use = "a span is recorded when the guard drops"]
pub struct SpanGuard {
    data: Option<SpanData>,
    _not_send: PhantomData<*const ()>,
}

struct SpanData {
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    start_ns: u64,
}

/// Open a span named `name`, parented to the thread's innermost open span.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            data: None,
            _not_send: PhantomData,
        };
    }
    let parent = current_span_id();
    open_span(name, parent)
}

/// Open a span with an explicit parent id, e.g. one captured on another
/// thread via [`current_span_id`]. This is how worker spans parent to the
/// coordinator's run span.
#[inline]
pub fn span_child_of(name: &'static str, parent: Option<u64>) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            data: None,
            _not_send: PhantomData,
        };
    }
    open_span(name, parent)
}

fn open_span(name: &'static str, parent: Option<u64>) -> SpanGuard {
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    TLS.with(|t| t.borrow_mut().span_stack.push(id));
    SpanGuard {
        data: Some(SpanData {
            id,
            parent,
            name,
            start_ns: now_ns(),
        }),
        _not_send: PhantomData,
    }
}

impl SpanGuard {
    /// Id of this span, if it is live (observability was on when opened).
    pub fn id(&self) -> Option<u64> {
        self.data.as_ref().map(|d| d.id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(data) = self.data.take() else { return };
        let end_ns = now_ns();
        TLS.with(|t| {
            let mut t = t.borrow_mut();
            // Pop our own id; tolerate out-of-order drops defensively.
            if t.span_stack.last() == Some(&data.id) {
                t.span_stack.pop();
            } else if let Some(pos) = t.span_stack.iter().rposition(|&s| s == data.id) {
                t.span_stack.remove(pos);
            }
            let thread = t.thread_id;
            t.push(Record::Span {
                id: data.id,
                parent: data.parent,
                name: data.name,
                thread,
                start_ns: data.start_ns,
                end_ns,
            });
        });
    }
}

/// Id of the calling thread's innermost open span, if any.
#[inline]
pub fn current_span_id() -> Option<u64> {
    if !enabled() {
        return None;
    }
    TLS.with(|t| t.borrow().span_stack.last().copied())
}

/// Record a point-in-time structured event with a key/value payload.
#[inline]
pub fn event(name: &'static str, fields: Vec<(&'static str, FieldValue)>) {
    if !enabled() {
        return;
    }
    let at_ns = now_ns();
    TLS.with(|t| {
        let mut t = t.borrow_mut();
        let thread = t.thread_id;
        t.push(Record::Event {
            name,
            thread,
            at_ns,
            fields,
        });
    });
}

pub(crate) fn flush_current_thread() {
    TLS.with(|t| t.borrow_mut().flush());
}

/// Take every flushed record (plus the calling thread's buffer), ordered
/// by timestamp. Worker threads must have exited (or flushed) for their
/// records to appear — `std::thread::scope` guarantees that.
pub fn drain() -> Vec<Record> {
    flush_current_thread();
    let mut records = {
        let mut coll = COLLECTOR.lock().unwrap_or_else(|e| e.into_inner());
        coll.dropped = 0;
        std::mem::take(&mut coll.records)
    };
    records.sort_by_key(|r| match r {
        Record::Span { start_ns, .. } => *start_ns,
        Record::Event { at_ns, .. } => *at_ns,
    });
    records
}

/// Number of records dropped to ring wraparound since the last [`drain`],
/// summed over flushed threads plus the calling thread.
pub fn dropped_records() -> u64 {
    let global = COLLECTOR.lock().unwrap_or_else(|e| e.into_inner()).dropped;
    global + TLS.with(|t| t.borrow().dropped)
}

pub(crate) fn reset() {
    TLS.with(|t| {
        let mut t = t.borrow_mut();
        t.ring.clear();
        t.dropped = 0;
        t.span_stack.clear();
        t.cap = RING_CAP.load(Ordering::Relaxed).max(1);
    });
    let mut coll = COLLECTOR.lock().unwrap_or_else(|e| e.into_inner());
    coll.records.clear();
    coll.dropped = 0;
}
