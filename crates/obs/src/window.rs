//! Sliding-window aggregates: per-second rates and short-horizon
//! percentiles over the last N seconds, alongside the cumulative registry.
//!
//! Implementation is a **ring of epochs**: time is divided into one-second
//! epochs and each windowed metric owns a fixed ring of [`SLOTS`] slots,
//! indexed by `epoch % SLOTS`. A recording thread loads the slot's epoch
//! tag and, if the slot is stale, CAS-claims it for the current epoch and
//! zeroes it. The hot path is therefore lock-free: one load, (rarely) one
//! CAS, then relaxed `fetch_add`s. Two races are tolerated by design and
//! bounded to one epoch of telemetry error:
//!
//! * A laggard thread that computed an older epoch than the slot now
//!   carries simply adds into the newer slot (monotonic-clock skew
//!   tolerance — counts are attributed at most one second late).
//! * Samples recorded between a winner's CAS and its zeroing store can be
//!   lost. Windows are operational telemetry, not accounting; the
//!   cumulative registry in [`crate::metrics`] remains exact.
//!
//! Snapshots aggregate the last [`WINDOW_EPOCHS`] epochs *including* the
//! current partial one, so a daemon that just started serving shows
//! non-zero rates immediately. With `SLOTS = 16 > WINDOW_EPOCHS = 10`,
//! slots inside the snapshot window cannot be concurrently reused.
//!
//! Unlike the cumulative instruments, the window hot path is gated only on
//! the `enabled` cargo feature, not the runtime switch: a daemon that was
//! started without `--metrics` still answers live `METRICS` queries with
//! real rates, and A/B overhead runs pay the (tiny) windowed cost on both
//! legs so the comparison stays fair.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::metrics::{bucket_index, bucket_upper, NBUCKETS};

/// Ring size; must exceed [`WINDOW_EPOCHS`] so snapshot reads never race
/// slot reuse.
pub const SLOTS: usize = 16;
/// Epoch length in nanoseconds (one second).
pub const EPOCH_NS: u64 = 1_000_000_000;
/// Number of epochs (seconds) a snapshot aggregates over.
pub const WINDOW_EPOCHS: u64 = 10;

/// Current epoch number (seconds since the observability epoch).
#[inline]
pub(crate) fn current_epoch() -> u64 {
    crate::now_ns() / EPOCH_NS
}

#[inline]
fn live() -> bool {
    cfg!(feature = "enabled")
}

// ---------------------------------------------------------------------------
// Windowed counter
// ---------------------------------------------------------------------------

struct CounterSlot {
    epoch: AtomicU64,
    count: AtomicU64,
}

impl CounterSlot {
    fn new() -> Self {
        CounterSlot {
            epoch: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

/// A counter whose per-second rate over the recent window is queryable
/// while the process runs. Cheap to clone (`Arc`-backed).
#[derive(Clone)]
pub struct WindowedCounter(Arc<[CounterSlot; SLOTS]>);

impl WindowedCounter {
    fn new() -> Self {
        WindowedCounter(Arc::new(std::array::from_fn(|_| CounterSlot::new())))
    }

    /// Add `n` to the current epoch's slot. Lock-free; no-op when the
    /// `enabled` cargo feature is compiled out.
    #[inline]
    pub fn add(&self, n: u64) {
        if !live() {
            return;
        }
        self.add_at_epoch(current_epoch(), n);
    }

    /// Add 1 to the current epoch's slot.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Deterministic test hook: record at an explicit epoch number.
    pub fn add_at_epoch(&self, epoch: u64, n: u64) {
        let slot = &self.0[(epoch % SLOTS as u64) as usize];
        claim(&slot.epoch, epoch, || slot.count.store(0, Ordering::Release));
        slot.count.fetch_add(n, Ordering::Relaxed);
    }

    /// Events per second over the trailing window ending at the current
    /// epoch (inclusive).
    pub fn rate(&self) -> f64 {
        self.rate_at_epoch(current_epoch())
    }

    /// Deterministic test hook: rate as observed from `now_epoch`.
    pub fn rate_at_epoch(&self, now_epoch: u64) -> f64 {
        let lo = now_epoch.saturating_sub(WINDOW_EPOCHS - 1);
        let mut total = 0u64;
        for slot in self.0.iter() {
            let e = slot.epoch.load(Ordering::Acquire);
            if e >= lo && e <= now_epoch {
                total += slot.count.load(Ordering::Relaxed);
            }
        }
        total as f64 / WINDOW_EPOCHS as f64
    }

    fn zero(&self) {
        for slot in self.0.iter() {
            slot.epoch.store(0, Ordering::Release);
            slot.count.store(0, Ordering::Release);
        }
    }
}

// ---------------------------------------------------------------------------
// Windowed histogram
// ---------------------------------------------------------------------------

struct HistSlot {
    epoch: AtomicU64,
    count: AtomicU64,
    buckets: Box<[AtomicU64]>,
}

impl HistSlot {
    fn new() -> Self {
        HistSlot {
            epoch: AtomicU64::new(0),
            count: AtomicU64::new(0),
            buckets: (0..NBUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn zero_counts(&self) {
        self.count.store(0, Ordering::Release);
        for b in self.buckets.iter() {
            b.store(0, Ordering::Release);
        }
    }
}

/// A histogram whose p50/p95/p99 over the recent window are queryable
/// while the process runs. Buckets follow the same log-linear layout as
/// the cumulative [`crate::Histogram`] (≤ ~6.25% relative error).
#[derive(Clone)]
pub struct WindowedHistogram(Arc<[HistSlot; SLOTS]>);

impl WindowedHistogram {
    fn new() -> Self {
        WindowedHistogram(Arc::new(std::array::from_fn(|_| HistSlot::new())))
    }

    /// Record one sample into the current epoch's slot. Lock-free; no-op
    /// when the `enabled` cargo feature is compiled out.
    #[inline]
    pub fn record(&self, v: u64) {
        if !live() {
            return;
        }
        self.record_at_epoch(current_epoch(), v);
    }

    /// Deterministic test hook: record at an explicit epoch number.
    pub fn record_at_epoch(&self, epoch: u64, v: u64) {
        let slot = &self.0[(epoch % SLOTS as u64) as usize];
        claim(&slot.epoch, epoch, || slot.zero_counts());
        slot.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        slot.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Percentile snapshot over the trailing window ending at the current
    /// epoch (inclusive).
    pub fn snapshot(&self) -> WindowedHistogramSnapshot {
        self.snapshot_at_epoch(current_epoch())
    }

    /// Deterministic test hook: snapshot as observed from `now_epoch`.
    pub fn snapshot_at_epoch(&self, now_epoch: u64) -> WindowedHistogramSnapshot {
        let lo = now_epoch.saturating_sub(WINDOW_EPOCHS - 1);
        let mut merged = vec![0u64; NBUCKETS];
        let mut count = 0u64;
        for slot in self.0.iter() {
            let e = slot.epoch.load(Ordering::Acquire);
            if e >= lo && e <= now_epoch {
                count += slot.count.load(Ordering::Relaxed);
                for (m, b) in merged.iter_mut().zip(slot.buckets.iter()) {
                    *m += b.load(Ordering::Relaxed);
                }
            }
        }
        if count == 0 {
            return WindowedHistogramSnapshot::default();
        }
        let pct = |q: f64| -> u64 {
            let target = ((q * count as f64).ceil() as u64).max(1);
            let mut cum = 0u64;
            for (i, &c) in merged.iter().enumerate() {
                cum += c;
                if cum >= target {
                    return bucket_upper(i);
                }
            }
            bucket_upper(NBUCKETS - 1)
        };
        WindowedHistogramSnapshot {
            count,
            p50: pct(0.50),
            p95: pct(0.95),
            p99: pct(0.99),
        }
    }

    fn zero(&self) {
        for slot in self.0.iter() {
            slot.epoch.store(0, Ordering::Release);
            slot.zero_counts();
        }
    }
}

/// Windowed percentile snapshot: count of samples in the window plus
/// approximate p50/p95/p99. All zero when the window is empty.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowedHistogramSnapshot {
    /// Samples inside the window.
    pub count: u64,
    /// ~50th percentile (bucket upper bound).
    pub p50: u64,
    /// ~95th percentile.
    pub p95: u64,
    /// ~99th percentile.
    pub p99: u64,
}

/// CAS-claim `slot_epoch` for `epoch`, running `reset` exactly once on the
/// winning thread. A slot already at a *newer* epoch is left alone — the
/// caller's sample lands there (skew tolerance, ≤ 1 epoch misattribution).
#[inline]
fn claim(slot_epoch: &AtomicU64, epoch: u64, reset: impl FnOnce()) {
    let seen = slot_epoch.load(Ordering::Acquire);
    if seen < epoch
        && slot_epoch
            .compare_exchange(seen, epoch, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    {
        reset();
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

#[derive(Clone)]
enum Windowed {
    Counter(WindowedCounter),
    Histogram(WindowedHistogram),
}

static REGISTRY: OnceLock<Mutex<BTreeMap<&'static str, Windowed>>> = OnceLock::new();

fn registry() -> &'static Mutex<BTreeMap<&'static str, Windowed>> {
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Fetch (registering on first use) the windowed counter named `name`.
pub fn windowed_counter(name: &'static str) -> WindowedCounter {
    let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    match reg
        .entry(name)
        .or_insert_with(|| Windowed::Counter(WindowedCounter::new()))
    {
        Windowed::Counter(c) => c.clone(),
        // Name/kind mismatch: detached handle, mirrors `metrics::counter`.
        _ => WindowedCounter::new(),
    }
}

/// Fetch (registering on first use) the windowed histogram named `name`.
pub fn windowed_histogram(name: &'static str) -> WindowedHistogram {
    let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    match reg
        .entry(name)
        .or_insert_with(|| Windowed::Histogram(WindowedHistogram::new()))
    {
        Windowed::Histogram(h) => h.clone(),
        _ => WindowedHistogram::new(),
    }
}

/// One named windowed aggregate in a [`WindowSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct WindowEntry {
    /// Metric name (`crate.subsystem.name`).
    pub name: &'static str,
    /// Snapshotted windowed value.
    pub value: WindowValue,
}

/// Snapshotted value of a windowed aggregate.
#[derive(Debug, Clone, PartialEq)]
pub enum WindowValue {
    /// Events per second over the window.
    Rate(f64),
    /// Windowed percentile snapshot.
    Histogram(WindowedHistogramSnapshot),
}

/// A point-in-time snapshot of every registered windowed aggregate,
/// sorted by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WindowSnapshot {
    /// Entries sorted by metric name.
    pub entries: Vec<WindowEntry>,
}

impl WindowSnapshot {
    /// Look up a rate by name.
    pub fn rate(&self, name: &str) -> Option<f64> {
        self.entries.iter().find_map(|e| match (&e.value, e.name) {
            (WindowValue::Rate(r), n) if n == name => Some(*r),
            _ => None,
        })
    }

    /// Look up a windowed histogram snapshot by name.
    pub fn histogram(&self, name: &str) -> Option<WindowedHistogramSnapshot> {
        self.entries.iter().find_map(|e| match (&e.value, e.name) {
            (WindowValue::Histogram(h), n) if n == name => Some(*h),
            _ => None,
        })
    }
}

/// Snapshot every registered windowed aggregate as observed right now.
pub fn window_snapshot() -> WindowSnapshot {
    let now = current_epoch();
    let reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    let entries = reg
        .iter()
        .map(|(&name, w)| WindowEntry {
            name,
            value: match w {
                Windowed::Counter(c) => WindowValue::Rate(c.rate_at_epoch(now)),
                Windowed::Histogram(h) => WindowValue::Histogram(h.snapshot_at_epoch(now)),
            },
        })
        .collect();
    WindowSnapshot { entries }
}

pub(crate) fn reset() {
    let reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    // Zero in place so cached handles stay valid, mirroring metrics::reset.
    for w in reg.values() {
        match w {
            Windowed::Counter(c) => c.zero(),
            Windowed::Histogram(h) => h.zero(),
        }
    }
}
