//! Cross-process span context: a serializable `(trace id, parent span id)`
//! pair that lets spans in one process parent under a trace started in
//! another (client → daemon today; the coordinator/worker topology of the
//! distributed roadmap item reuses the same mechanism).
//!
//! The wire form is deliberately tiny and version-free: exactly
//! [`SpanContext::WIRE_LEN`] bytes, two little-endian `u64`s
//! (`trace_id`, `span_id`). Carriers that need optionality or versioning
//! (e.g. the serve SUBMIT frame) layer it themselves.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// A propagatable span context: which trace this work belongs to and
/// which span is its parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanContext {
    /// Process-spanning trace identifier (non-zero).
    pub trace_id: u64,
    /// Span id of the parent span inside that trace.
    pub span_id: u64,
}

impl SpanContext {
    /// Serialized size in bytes.
    pub const WIRE_LEN: usize = 16;

    /// Start a fresh trace rooted at `span_id` (usually
    /// [`crate::current_span_id`] of the span doing the injecting).
    pub fn new_root(span_id: u64) -> SpanContext {
        SpanContext {
            trace_id: new_trace_id(),
            span_id,
        }
    }

    /// Same trace, re-parented under `span_id`.
    pub fn child(&self, span_id: u64) -> SpanContext {
        SpanContext {
            trace_id: self.trace_id,
            span_id,
        }
    }

    /// Append the 16-byte wire form to `out`.
    pub fn inject(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.trace_id.to_le_bytes());
        out.extend_from_slice(&self.span_id.to_le_bytes());
    }

    /// Parse the 16-byte wire form. Returns `None` unless `bytes` is
    /// exactly [`Self::WIRE_LEN`] long with a non-zero trace id.
    pub fn extract(bytes: &[u8]) -> Option<SpanContext> {
        if bytes.len() != Self::WIRE_LEN {
            return None;
        }
        let mut t = [0u8; 8];
        let mut s = [0u8; 8];
        t.copy_from_slice(&bytes[..8]);
        s.copy_from_slice(&bytes[8..]);
        let ctx = SpanContext {
            trace_id: u64::from_le_bytes(t),
            span_id: u64::from_le_bytes(s),
        };
        if ctx.trace_id == 0 {
            return None;
        }
        Some(ctx)
    }
}

/// Allocate a trace id that is unique within this process and very
/// unlikely to collide across processes: a counter seeded by FNV-mixing
/// the pid and process start time. Never returns 0 (0 is "no trace").
pub fn new_trace_id() -> u64 {
    static NEXT: OnceLock<AtomicU64> = OnceLock::new();
    let next = NEXT.get_or_init(|| {
        let pid = std::process::id() as u64;
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        // FNV-1a over the two seeds, matching the hash family used
        // elsewhere in the workspace.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in pid.to_le_bytes().iter().chain(t.to_le_bytes().iter()) {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        AtomicU64::new(h | 1)
    });
    let mut id = next.fetch_add(1, Ordering::Relaxed);
    if id == 0 {
        id = next.fetch_add(1, Ordering::Relaxed);
    }
    id
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inject_extract_roundtrip() {
        let ctx = SpanContext {
            trace_id: 0xdead_beef_cafe_f00d,
            span_id: 42,
        };
        let mut buf = vec![0xAA]; // pre-existing bytes must be preserved
        ctx.inject(&mut buf);
        assert_eq!(buf.len(), 1 + SpanContext::WIRE_LEN);
        assert_eq!(SpanContext::extract(&buf[1..]), Some(ctx));
    }

    #[test]
    fn extract_rejects_bad_input() {
        assert_eq!(SpanContext::extract(&[]), None);
        assert_eq!(SpanContext::extract(&[0u8; 15]), None);
        assert_eq!(SpanContext::extract(&[0u8; 17]), None);
        // Zero trace id means "no trace".
        assert_eq!(SpanContext::extract(&[0u8; 16]), None);
    }

    #[test]
    fn trace_ids_are_unique_and_nonzero() {
        let a = new_trace_id();
        let b = new_trace_id();
        assert_ne!(a, 0);
        assert_ne!(b, 0);
        assert_ne!(a, b);
    }
}
