//! Phase profiler: attributes wall time to coarse solver phases per
//! worker thread, with *self time* semantics — time spent in a nested
//! phase (e.g. an `LpWarm` solve inside `Bound`) is charged to the inner
//! phase only.

use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::metrics::{histogram, Histogram};
use crate::enabled;

/// The coarse phases of a verification run. Order matters only for
/// display.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Building the MILP/LP encoding of the network.
    Encode,
    /// Bounding a B&B node (LP relaxation + interval analysis).
    Bound,
    /// Warm-started LP solve.
    LpWarm,
    /// Cold (from-scratch) LP solve.
    LpCold,
    /// Selecting a branch variable and pushing children.
    Branch,
    /// Folding worker results / dropped bounds into the final verdict.
    Fold,
}

/// All phases, in display order.
pub const PHASES: [Phase; 6] = [
    Phase::Encode,
    Phase::Bound,
    Phase::LpWarm,
    Phase::LpCold,
    Phase::Branch,
    Phase::Fold,
];

const NUM_PHASES: usize = PHASES.len();

impl Phase {
    /// Stable lowercase name used in metrics (`obs.phase.<name>`), the
    /// profile table and the JSONL `profile` record.
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Encode => "encode",
            Phase::Bound => "bound",
            Phase::LpWarm => "lp_warm",
            Phase::LpCold => "lp_cold",
            Phase::Branch => "branch",
            Phase::Fold => "fold",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::Encode => 0,
            Phase::Bound => 1,
            Phase::LpWarm => 2,
            Phase::LpCold => 3,
            Phase::Branch => 4,
            Phase::Fold => 5,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Cell {
    self_ns: u64,
    total_ns: u64,
    count: u64,
}

struct Frame {
    phase: Phase,
    start: Instant,
    child_ns: u64,
}

#[derive(Default)]
struct ThreadProf {
    stack: Vec<Frame>,
    totals: [Cell; NUM_PHASES],
    touched: bool,
}

impl ThreadProf {
    fn flush(&mut self) {
        if !self.touched {
            return;
        }
        let mut g = global().lock().unwrap_or_else(|e| e.into_inner());
        g.threads.push(self.totals);
        self.totals = [Cell::default(); NUM_PHASES];
        self.touched = false;
    }
}

impl Drop for ThreadProf {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static PROF: RefCell<ThreadProf> = RefCell::new(ThreadProf::default());
}

#[derive(Default)]
struct GlobalProf {
    threads: Vec<[Cell; NUM_PHASES]>,
}

fn global() -> &'static Mutex<GlobalProf> {
    static G: OnceLock<Mutex<GlobalProf>> = OnceLock::new();
    G.get_or_init(|| Mutex::new(GlobalProf::default()))
}

fn phase_histograms() -> &'static [Histogram; NUM_PHASES] {
    static H: OnceLock<[Histogram; NUM_PHASES]> = OnceLock::new();
    H.get_or_init(|| {
        [
            histogram("obs.phase.encode"),
            histogram("obs.phase.bound"),
            histogram("obs.phase.lp_warm"),
            histogram("obs.phase.lp_cold"),
            histogram("obs.phase.branch"),
            histogram("obs.phase.fold"),
        ]
    })
}

/// RAII guard for a profiled phase; accounts self time on drop. Not
/// `Send` — phases are per-thread by construction.
#[must_use = "phase time is accounted when the guard drops"]
pub struct PhaseGuard {
    live: bool,
    _not_send: PhantomData<*const ()>,
}

/// Enter `p` on the calling thread. Nested phases subtract their time
/// from the enclosing phase's self time.
#[inline]
pub fn phase(p: Phase) -> PhaseGuard {
    if !enabled() {
        return PhaseGuard {
            live: false,
            _not_send: PhantomData,
        };
    }
    PROF.with(|t| {
        t.borrow_mut().stack.push(Frame {
            phase: p,
            start: Instant::now(),
            child_ns: 0,
        });
    });
    PhaseGuard {
        live: true,
        _not_send: PhantomData,
    }
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        if !self.live {
            return;
        }
        PROF.with(|t| {
            let mut t = t.borrow_mut();
            let Some(frame) = t.stack.pop() else { return };
            let total = frame.start.elapsed().as_nanos() as u64;
            let self_ns = total.saturating_sub(frame.child_ns);
            let idx = frame.phase.index();
            t.totals[idx].self_ns += self_ns;
            t.totals[idx].total_ns += total;
            t.totals[idx].count += 1;
            t.touched = true;
            if let Some(parent) = t.stack.last_mut() {
                parent.child_ns += total;
            }
            phase_histograms()[idx].record(total);
        });
    }
}

/// Aggregated totals for one phase across all flushed threads.
#[derive(Debug, Clone, Copy)]
pub struct PhaseTotal {
    /// Which phase.
    pub phase: Phase,
    /// Self time (excluding nested phases), nanoseconds, summed over threads.
    pub self_ns: u64,
    /// Total (inclusive) time, nanoseconds, summed over threads.
    pub total_ns: u64,
    /// Number of guard enter/exit pairs.
    pub count: u64,
    /// Number of worker threads that touched this phase.
    pub threads: u64,
}

/// Aggregate per-phase totals across every flushed thread (flushes the
/// calling thread first).
pub fn phase_totals() -> Vec<PhaseTotal> {
    flush_current_thread();
    let g = global().lock().unwrap_or_else(|e| e.into_inner());
    PHASES
        .iter()
        .map(|&p| {
            let idx = p.index();
            let mut t = PhaseTotal {
                phase: p,
                self_ns: 0,
                total_ns: 0,
                count: 0,
                threads: 0,
            };
            for th in &g.threads {
                let c = th[idx];
                if c.count > 0 {
                    t.self_ns += c.self_ns;
                    t.total_ns += c.total_ns;
                    t.count += c.count;
                    t.threads += 1;
                }
            }
            t
        })
        .collect()
}

/// Sum of `bound + branch` self time across all workers, in seconds. This
/// is the "search clock" used for `nodes_per_sec` — it excludes encode,
/// fold, and idle time, so throughput is comparable across thread counts.
pub fn search_seconds() -> f64 {
    phase_totals()
        .iter()
        .filter(|t| matches!(t.phase, Phase::Bound | Phase::Branch))
        .map(|t| t.total_ns as f64 * 1e-9)
        .sum()
}

/// Render the per-phase self-time summary table (plus a per-thread
/// breakdown when more than one worker contributed).
pub fn profile_report() -> String {
    flush_current_thread();
    let totals = phase_totals();
    let grand: u64 = totals.iter().map(|t| t.self_ns).sum();
    let mut out = String::from("PHASE PROFILE (self time, all workers)\n");
    out.push_str(&format!(
        "  {:<8} {:>9} {:>12} {:>6}  {:>10}\n",
        "phase", "count", "self", "%", "mean"
    ));
    for t in &totals {
        if t.count == 0 {
            continue;
        }
        let pct = if grand > 0 {
            t.self_ns as f64 / grand as f64 * 100.0
        } else {
            0.0
        };
        let mean_ns = t.total_ns / t.count.max(1);
        out.push_str(&format!(
            "  {:<8} {:>9} {:>12} {:>5.1}%  {:>10}\n",
            t.phase.as_str(),
            t.count,
            fmt_ns(t.self_ns),
            pct,
            fmt_ns(mean_ns),
        ));
    }
    let g = global().lock().unwrap_or_else(|e| e.into_inner());
    let active: Vec<&[Cell; NUM_PHASES]> = g
        .threads
        .iter()
        .filter(|th| th.iter().any(|c| c.count > 0))
        .collect();
    if active.len() > 1 {
        out.push_str(&format!("  per-worker self time ({} workers):\n", active.len()));
        for (i, th) in active.iter().enumerate() {
            let mut parts: Vec<String> = Vec::new();
            for p in PHASES {
                let c = th[p.index()];
                if c.count > 0 {
                    parts.push(format!("{}={}", p.as_str(), fmt_ns(c.self_ns)));
                }
            }
            out.push_str(&format!("    w{i}: {}\n", parts.join(" ")));
        }
    }
    out
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 * 1e-9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 * 1e-6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 * 1e-3)
    } else {
        format!("{ns}ns")
    }
}

pub(crate) fn flush_current_thread() {
    PROF.with(|t| t.borrow_mut().flush());
}

pub(crate) fn reset() {
    PROF.with(|t| {
        let mut t = t.borrow_mut();
        t.stack.clear();
        t.totals = [Cell::default(); NUM_PHASES];
        t.touched = false;
    });
    global()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .threads
        .clear();
}
