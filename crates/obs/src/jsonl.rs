//! JSONL rendering and schema validation for trace files.
//!
//! One JSON object per line. Four record types, discriminated by `type`:
//!
//! * `span`    — `{type,id,parent,name,thread,start_ns,end_ns}`
//! * `event`   — `{type,name,thread,at_ns,fields:{...}}`
//! * `metrics` — `{type,counters:{...},gauges:{...},histograms:{name:{count,sum,min,max,p50,p95,p99}}}`
//! * `profile` — `{type,phases:{name:{self_ns,total_ns,count,threads}}}`
//!
//! The validator embeds a minimal recursive-descent JSON parser (the repo
//! is dependency-free by policy) and is always compiled, so tests and the
//! `obs_check` tool work even with the `enabled` feature off.

use crate::metrics::{MetricValue, MetricsSnapshot};
use crate::phase::PhaseTotal;
use crate::span::{FieldValue, Record};

/// Escape a string for inclusion in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            format!("{:.1}", v)
        } else {
            format!("{}", v)
        }
    } else {
        // JSON has no NaN/Inf; encode as null.
        "null".to_string()
    }
}

fn render_field(v: &FieldValue) -> String {
    match v {
        FieldValue::U64(x) => x.to_string(),
        FieldValue::I64(x) => x.to_string(),
        FieldValue::F64(x) => fmt_f64(*x),
        FieldValue::Str(s) => format!("\"{}\"", escape(s)),
        FieldValue::Bool(b) => b.to_string(),
    }
}

/// Render one span/event record as a single JSON object (no newline).
pub fn render_record(rec: &Record) -> String {
    match rec {
        Record::Span {
            id,
            parent,
            name,
            thread,
            start_ns,
            end_ns,
        } => {
            let parent = match parent {
                Some(p) => p.to_string(),
                None => "null".to_string(),
            };
            format!(
                "{{\"type\":\"span\",\"id\":{id},\"parent\":{parent},\"name\":\"{}\",\"thread\":{thread},\"start_ns\":{start_ns},\"end_ns\":{end_ns}}}",
                escape(name)
            )
        }
        Record::Event {
            name,
            thread,
            at_ns,
            fields,
        } => {
            let body: Vec<String> = fields
                .iter()
                .map(|(k, v)| format!("\"{}\":{}", escape(k), render_field(v)))
                .collect();
            format!(
                "{{\"type\":\"event\",\"name\":\"{}\",\"thread\":{thread},\"at_ns\":{at_ns},\"fields\":{{{}}}}}",
                escape(name),
                body.join(",")
            )
        }
    }
}

/// Render the trailing `metrics` record.
pub fn render_metrics(snap: &MetricsSnapshot) -> String {
    let mut counters: Vec<String> = Vec::new();
    let mut gauges: Vec<String> = Vec::new();
    let mut hists: Vec<String> = Vec::new();
    for e in &snap.entries {
        match &e.value {
            MetricValue::Counter(v) => {
                counters.push(format!("\"{}\":{v}", escape(e.name)));
            }
            MetricValue::Gauge { value, high_water } => {
                gauges.push(format!(
                    "\"{}\":{{\"value\":{value},\"peak\":{high_water}}}",
                    escape(e.name)
                ));
            }
            MetricValue::Histogram(h) => {
                hists.push(format!(
                    "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                    escape(e.name),
                    h.count,
                    h.sum,
                    if h.count == 0 { 0 } else { h.min },
                    h.max,
                    h.p50,
                    h.p95,
                    h.p99
                ));
            }
        }
    }
    format!(
        "{{\"type\":\"metrics\",\"counters\":{{{}}},\"gauges\":{{{}}},\"histograms\":{{{}}}}}",
        counters.join(","),
        gauges.join(","),
        hists.join(",")
    )
}

/// Render the trailing `profile` record.
pub fn render_profile(totals: &[PhaseTotal]) -> String {
    let body: Vec<String> = totals
        .iter()
        .map(|t| {
            format!(
                "\"{}\":{{\"self_ns\":{},\"total_ns\":{},\"count\":{},\"threads\":{}}}",
                t.phase.as_str(),
                t.self_ns,
                t.total_ns,
                t.count,
                t.threads
            )
        })
        .collect();
    format!("{{\"type\":\"profile\",\"phases\":{{{}}}}}", body.join(","))
}

// ---------------------------------------------------------------------
// Minimal JSON value + parser (validation side).
// ---------------------------------------------------------------------

/// A parsed JSON value (validator-side; not used on the hot path).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, as f64.
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object, preserving key order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Object view.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(pairs) => Some(pairs.as_slice()),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf8 in number"))?;
        s.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex =
                                std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                    .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf8"))?;
                    let c = rest.chars().next().ok_or_else(|| self.err("eof"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parse one JSON document (must consume the whole input).
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(v)
}

/// Summary of a validated trace file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSummary {
    /// Number of `span` records.
    pub spans: usize,
    /// Number of `event` records.
    pub events: usize,
    /// Counter names found in the `metrics` record.
    pub counter_names: Vec<String>,
    /// Histogram names found in the `metrics` record.
    pub histogram_names: Vec<String>,
    /// Phase names found in the `profile` record.
    pub phase_names: Vec<String>,
    /// Whether a `metrics` record was present.
    pub has_metrics: bool,
    /// Whether a `profile` record was present.
    pub has_profile: bool,
}

fn require_num(obj: &Value, key: &str, line: usize) -> Result<(), String> {
    obj.get(key)
        .and_then(Value::as_f64)
        .map(|_| ())
        .ok_or_else(|| format!("line {line}: missing numeric field '{key}'"))
}

/// Validate a whole JSONL trace against the schema; returns a summary of
/// what it contained, or the first error.
pub fn validate_trace(text: &str) -> Result<TraceSummary, String> {
    let mut summary = TraceSummary::default();
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let v = parse(line).map_err(|e| format!("line {lineno}: {e}"))?;
        let ty = v
            .get("type")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("line {lineno}: missing string field 'type'"))?;
        match ty {
            "span" => {
                for key in ["id", "thread", "start_ns", "end_ns"] {
                    require_num(&v, key, lineno)?;
                }
                v.get("name")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("line {lineno}: span missing 'name'"))?;
                match v.get("parent") {
                    Some(Value::Null) | Some(Value::Num(_)) => {}
                    _ => return Err(format!("line {lineno}: span 'parent' must be null or id")),
                }
                let start = v.get("start_ns").and_then(Value::as_f64).unwrap_or(0.0);
                let end = v.get("end_ns").and_then(Value::as_f64).unwrap_or(0.0);
                if end < start {
                    return Err(format!("line {lineno}: span ends before it starts"));
                }
                summary.spans += 1;
            }
            "event" => {
                v.get("name")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("line {lineno}: event missing 'name'"))?;
                require_num(&v, "thread", lineno)?;
                require_num(&v, "at_ns", lineno)?;
                if v.get("fields").and_then(Value::as_obj).is_none() {
                    return Err(format!("line {lineno}: event 'fields' must be an object"));
                }
                summary.events += 1;
            }
            "metrics" => {
                let counters = v
                    .get("counters")
                    .and_then(Value::as_obj)
                    .ok_or_else(|| format!("line {lineno}: metrics missing 'counters'"))?;
                for (name, val) in counters {
                    if val.as_f64().is_none() {
                        return Err(format!("line {lineno}: counter '{name}' not numeric"));
                    }
                    summary.counter_names.push(name.clone());
                }
                let hists = v
                    .get("histograms")
                    .and_then(Value::as_obj)
                    .ok_or_else(|| format!("line {lineno}: metrics missing 'histograms'"))?;
                for (name, h) in hists {
                    for key in ["count", "sum", "min", "max", "p50", "p95", "p99"] {
                        require_num(h, key, lineno)
                            .map_err(|e| format!("{e} (histogram '{name}')"))?;
                    }
                    summary.histogram_names.push(name.clone());
                }
                if v.get("gauges").and_then(Value::as_obj).is_none() {
                    return Err(format!("line {lineno}: metrics missing 'gauges'"));
                }
                summary.has_metrics = true;
            }
            "profile" => {
                let phases = v
                    .get("phases")
                    .and_then(Value::as_obj)
                    .ok_or_else(|| format!("line {lineno}: profile missing 'phases'"))?;
                for (name, p) in phases {
                    for key in ["self_ns", "total_ns", "count", "threads"] {
                        require_num(p, key, lineno)
                            .map_err(|e| format!("{e} (phase '{name}')"))?;
                    }
                    summary.phase_names.push(name.clone());
                }
                summary.has_profile = true;
            }
            other => return Err(format!("line {lineno}: unknown record type '{other}'")),
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        let v = parse(r#"{"a":1,"b":[true,null,"x\n"],"c":{"d":-2.5}}"#).expect("parse");
        assert_eq!(v.get("a").and_then(Value::as_f64), Some(1.0));
        assert_eq!(v.get("c").and_then(|c| c.get("d")).and_then(Value::as_f64), Some(-2.5));
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate_trace("{\"type\":\"span\"}").is_err());
        assert!(validate_trace("not json").is_err());
        assert!(validate_trace("{\"type\":\"mystery\"}").is_err());
    }
}
