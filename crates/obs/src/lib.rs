//! `certnn-obs`: a zero-external-dependency observability layer for the
//! certnn verification stack.
//!
//! Three instruments share one design rule — *near-zero cost when off*:
//!
//! * **Spans** ([`span`], [`span_child_of`], [`event`]): RAII guards that
//!   record start/stop/thread/parent into a per-thread ring buffer (no
//!   locks on the hot path) and drain to JSONL via [`drain_jsonl`].
//! * **Metrics** ([`counter`], [`gauge`], [`histogram`]): a registry of
//!   named atomics. Counter increments are a single relaxed `fetch_add`;
//!   histograms use fixed log-linear buckets (16 sub-buckets per power of
//!   two, ≤ ~6% relative error on p50/p95/p99).
//! * **Phase profiler** ([`phase`], [`Phase`]): attributes wall time to
//!   `encode / bound / lp_warm / lp_cold / branch / fold` phases per
//!   worker thread and renders a self-time summary table
//!   ([`profile_report`]).
//!
//! Everything is gated twice: the `enabled` cargo feature (off ⇒ all
//! instrumentation is dead code) and a runtime [`set_enabled`] switch
//! (default off). Instrumented code never needs `cfg` attributes — it just
//! calls the API and the calls vanish when observability is off.

#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

pub mod jsonl;
mod ctx;
mod metrics;
mod phase;
mod span;
mod window;

pub use ctx::{new_trace_id, SpanContext};
pub use metrics::{
    counter, gauge, histogram, metrics_snapshot, Counter, Gauge, Histogram, HistogramSnapshot,
    MetricEntry, MetricValue, MetricsSnapshot,
};
pub use window::{
    window_snapshot, windowed_counter, windowed_histogram, WindowEntry, WindowSnapshot,
    WindowValue, WindowedCounter, WindowedHistogram, WindowedHistogramSnapshot, WINDOW_EPOCHS,
};
pub use phase::{
    phase, phase_totals, profile_report, search_seconds, Phase, PhaseGuard, PhaseTotal, PHASES,
};
pub use span::{
    current_span_id, drain, dropped_records, event, set_ring_capacity, span, span_child_of,
    FieldValue, Record, SpanGuard,
};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

static RUNTIME_ON: AtomicBool = AtomicBool::new(false);
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Turn the runtime observability switch on or off.
///
/// With the `enabled` cargo feature compiled out this is a no-op and
/// [`enabled`] stays `false` forever.
pub fn set_enabled(on: bool) {
    if on {
        // Pin the epoch before the first record so timestamps are
        // monotonically meaningful across threads.
        let _ = EPOCH.get_or_init(Instant::now);
    }
    RUNTIME_ON.store(on, Ordering::SeqCst);
}

/// Whether instrumentation is live. Compiles to `false` (and lets the
/// optimizer delete every instrumentation branch) when the `enabled`
/// feature is off.
#[inline(always)]
pub fn enabled() -> bool {
    cfg!(feature = "enabled") && RUNTIME_ON.load(Ordering::Relaxed)
}

/// Nanoseconds since the observability epoch (first `set_enabled(true)`).
#[inline]
pub(crate) fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Flush the calling thread's buffered spans/events and phase totals into
/// the global collectors. Worker threads flush automatically on exit; call
/// this on the main thread before [`drain_jsonl`] / [`profile_report`].
pub fn flush_thread() {
    span::flush_current_thread();
    phase::flush_current_thread();
}

/// Clear all recorded spans, events, metrics and phase totals. Intended
/// for tests and for the start of an instrumented run.
pub fn reset() {
    span::reset();
    metrics::reset();
    phase::reset();
    window::reset();
}

/// Drain every buffered span and event plus a trailing `metrics` record
/// and a trailing `profile` record, rendered as JSONL (one JSON object per
/// line). Span/event records are ordered by timestamp.
pub fn drain_jsonl() -> String {
    flush_thread();
    let mut out = String::new();
    for rec in drain() {
        out.push_str(&jsonl::render_record(&rec));
        out.push('\n');
    }
    out.push_str(&jsonl::render_metrics(&metrics_snapshot()));
    out.push('\n');
    out.push_str(&jsonl::render_profile(&phase_totals()));
    out.push('\n');
    out
}
