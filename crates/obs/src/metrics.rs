//! Metrics registry: named counters, gauges and log-linear histograms.
//!
//! Handles are `Arc`-backed and cheap to clone; instrumented crates fetch
//! them once (e.g. in a `OnceLock`-cached struct) and then increment with
//! a single relaxed atomic op. All metric names follow the convention
//! `crate.subsystem.name` (see DESIGN.md §Observability).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::enabled;

static REGISTRY: OnceLock<Mutex<BTreeMap<&'static str, Metric>>> = OnceLock::new();

#[derive(Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

fn registry() -> &'static Mutex<BTreeMap<&'static str, Metric>> {
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// A monotonically increasing counter.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add `n` (no-op while observability is off).
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Add 1 (no-op while observability is off).
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable signed gauge with a tracked high-water mark.
#[derive(Clone)]
pub struct Gauge {
    value: Arc<AtomicI64>,
    max: Arc<AtomicI64>,
}

impl Gauge {
    /// Set the gauge (no-op while observability is off). Also advances the
    /// high-water mark.
    #[inline]
    pub fn set(&self, v: i64) {
        if enabled() {
            self.value.store(v, Ordering::Relaxed);
            self.max.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Highest value ever set.
    pub fn high_water(&self) -> i64 {
        self.max.load(Ordering::Relaxed)
    }
}

// Log-linear bucketing: values < 16 land in exact unit buckets; above
// that, each power of two is split into 16 sub-buckets, bounding relative
// error on reported percentiles at 1/16 ≈ 6.25%.
const SUBS: usize = 16;
const SUB_BITS: u32 = 4;
// Exponents 4..=63 each contribute SUBS buckets, after the 16 exact ones.
// Shared with the windowed histograms in `crate::window`.
pub(crate) const NBUCKETS: usize = SUBS + (64 - SUB_BITS as usize) * SUBS;

pub(crate) fn bucket_index(v: u64) -> usize {
    if v < SUBS as u64 {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros(); // >= SUB_BITS
    let sub = ((v >> (exp - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
    let idx = SUBS + (exp - SUB_BITS) as usize * SUBS + sub;
    idx.min(NBUCKETS - 1)
}

/// Upper bound of a bucket (the value reported for percentiles landing in it).
pub(crate) fn bucket_upper(idx: usize) -> u64 {
    if idx < SUBS {
        return idx as u64;
    }
    let rel = idx - SUBS;
    let exp = SUB_BITS + (rel / SUBS) as u32;
    let sub = (rel % SUBS) as u64;
    // Bucket covers [ (16+sub) << (exp-4), (16+sub+1) << (exp-4) ).
    ((SUBS as u64 + sub + 1) << (exp - SUB_BITS)).saturating_sub(1)
}

struct HistInner {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// A fixed-bucket log-linear histogram of `u64` samples (typically
/// nanoseconds). Percentile snapshots are accurate to ≤ ~6.25%.
#[derive(Clone)]
pub struct Histogram(Arc<HistInner>);

impl Histogram {
    fn new() -> Self {
        let buckets: Vec<AtomicU64> = (0..NBUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram(Arc::new(HistInner {
            buckets: buckets.into_boxed_slice(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }))
    }

    /// Record one sample (no-op while observability is off).
    #[inline]
    pub fn record(&self, v: u64) {
        if !enabled() {
            return;
        }
        let inner = &self.0;
        inner.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(v, Ordering::Relaxed);
        inner.min.fetch_min(v, Ordering::Relaxed);
        inner.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record a `std::time::Duration` as nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_nanos() as u64);
    }

    /// Point-in-time snapshot with approximate percentiles.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let inner = &self.0;
        let count = inner.count.load(Ordering::Relaxed);
        if count == 0 {
            return HistogramSnapshot::default();
        }
        let counts: Vec<u64> = inner
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let pct = |q: f64| -> u64 {
            let target = ((q * count as f64).ceil() as u64).max(1);
            let mut cum = 0u64;
            for (i, &c) in counts.iter().enumerate() {
                cum += c;
                if cum >= target {
                    return bucket_upper(i);
                }
            }
            bucket_upper(NBUCKETS - 1)
        };
        HistogramSnapshot {
            count,
            sum: inner.sum.load(Ordering::Relaxed),
            min: inner.min.load(Ordering::Relaxed),
            max: inner.max.load(Ordering::Relaxed),
            p50: pct(0.50),
            p95: pct(0.95),
            p99: pct(0.99),
        }
    }
}

/// Snapshot of a [`Histogram`]: exact count/sum/min/max, approximate
/// p50/p95/p99 (bucket upper bounds).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 if empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// ~50th percentile.
    pub p50: u64,
    /// ~95th percentile.
    pub p95: u64,
    /// ~99th percentile.
    pub p99: u64,
}

fn get_or_register(name: &'static str, make: impl FnOnce() -> Metric) -> Metric {
    let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    reg.entry(name).or_insert_with(make).clone()
}

/// Fetch (registering on first use) the counter named `name`.
pub fn counter(name: &'static str) -> Counter {
    match get_or_register(name, || Metric::Counter(Counter(Arc::new(AtomicU64::new(0))))) {
        Metric::Counter(c) => c,
        // Name/kind mismatch is a programming error; return a detached
        // handle rather than panicking inside instrumentation.
        _ => Counter(Arc::new(AtomicU64::new(0))),
    }
}

/// Fetch (registering on first use) the gauge named `name`.
pub fn gauge(name: &'static str) -> Gauge {
    match get_or_register(name, || {
        Metric::Gauge(Gauge {
            value: Arc::new(AtomicI64::new(0)),
            max: Arc::new(AtomicI64::new(0)),
        })
    }) {
        Metric::Gauge(g) => g,
        _ => Gauge {
            value: Arc::new(AtomicI64::new(0)),
            max: Arc::new(AtomicI64::new(0)),
        },
    }
}

/// Fetch (registering on first use) the histogram named `name`.
pub fn histogram(name: &'static str) -> Histogram {
    match get_or_register(name, || Metric::Histogram(Histogram::new())) {
        Metric::Histogram(h) => h,
        _ => Histogram::new(),
    }
}

/// One named metric in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricEntry {
    /// Metric name (`crate.subsystem.name`).
    pub name: &'static str,
    /// Snapshotted value.
    pub value: MetricValue,
}

/// Snapshotted value of a metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge current value and high-water mark.
    Gauge {
        /// Last value set.
        value: i64,
        /// Highest value ever set.
        high_water: i64,
    },
    /// Histogram snapshot.
    Histogram(HistogramSnapshot),
}

/// A point-in-time snapshot of every registered metric, sorted by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Entries sorted by metric name.
    pub entries: Vec<MetricEntry>,
}

impl MetricsSnapshot {
    /// All registered metric names, sorted.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|e| e.name).collect()
    }

    /// Look up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.entries.iter().find_map(|e| match (&e.value, e.name) {
            (MetricValue::Counter(v), n) if n == name => Some(*v),
            _ => None,
        })
    }

    /// Look up a histogram snapshot by name.
    pub fn histogram(&self, name: &str) -> Option<HistogramSnapshot> {
        self.entries.iter().find_map(|e| match (&e.value, e.name) {
            (MetricValue::Histogram(h), n) if n == name => Some(*h),
            _ => None,
        })
    }

    /// Scalar view used when folding metrics into bench JSON rows:
    /// counters, gauges (`{name}` = high-water mark for run-over-run
    /// comparability, `{name}.value` = last value set, so final
    /// frontier-depth / utilization readings survive into the row), and
    /// per-histogram `{name}.count` / `{name}.p50` / `{name}.p95` scalars
    /// so tools like `bench_diff` can compare solve-time percentiles
    /// across runs. Empty histograms are skipped entirely, keeping rows
    /// flat and free of all-zero noise.
    pub fn scalars(&self) -> Vec<(String, f64)> {
        let mut out = Vec::with_capacity(self.entries.len());
        for e in &self.entries {
            match &e.value {
                MetricValue::Counter(v) => out.push((e.name.to_string(), *v as f64)),
                MetricValue::Gauge { value, high_water } => {
                    out.push((e.name.to_string(), *high_water as f64));
                    out.push((format!("{}.value", e.name), *value as f64));
                }
                MetricValue::Histogram(h) => {
                    if h.count > 0 {
                        out.push((format!("{}.count", e.name), h.count as f64));
                        out.push((format!("{}.p50", e.name), h.p50 as f64));
                        out.push((format!("{}.p95", e.name), h.p95 as f64));
                    }
                }
            }
        }
        out
    }

    /// Render as an aligned human-readable table.
    pub fn to_table(&self) -> String {
        let mut out = String::from("METRICS SNAPSHOT\n");
        let width = self
            .entries
            .iter()
            .map(|e| e.name.len())
            .max()
            .unwrap_or(4)
            .max(4);
        for e in &self.entries {
            match &e.value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("  {:width$}  {v}\n", e.name, width = width));
                }
                MetricValue::Gauge { value, high_water } => {
                    out.push_str(&format!(
                        "  {:width$}  {value} (peak {high_water})\n",
                        e.name,
                        width = width
                    ));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!(
                        "  {:width$}  n={} p50={} p95={} p99={} max={}\n",
                        e.name, h.count, h.p50, h.p95, h.p99, h.max,
                        width = width
                    ));
                }
            }
        }
        out
    }
}

/// Snapshot every registered metric. Available even while the runtime
/// switch is off (values simply stop moving).
pub fn metrics_snapshot() -> MetricsSnapshot {
    let reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    let entries = reg
        .iter()
        .map(|(&name, m)| MetricEntry {
            name,
            value: match m {
                Metric::Counter(c) => MetricValue::Counter(c.get()),
                Metric::Gauge(g) => MetricValue::Gauge {
                    value: g.get(),
                    high_water: g.high_water(),
                },
                Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
            },
        })
        .collect();
    MetricsSnapshot { entries }
}

pub(crate) fn reset() {
    let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    // Zero in place so cached handles in instrumented crates stay valid.
    for m in reg.values_mut() {
        match m {
            Metric::Counter(c) => c.0.store(0, Ordering::Relaxed),
            Metric::Gauge(g) => {
                g.value.store(0, Ordering::Relaxed);
                g.max.store(0, Ordering::Relaxed);
            }
            Metric::Histogram(h) => {
                for b in h.0.buckets.iter() {
                    b.store(0, Ordering::Relaxed);
                }
                h.0.count.store(0, Ordering::Relaxed);
                h.0.sum.store(0, Ordering::Relaxed);
                h.0.min.store(u64::MAX, Ordering::Relaxed);
                h.0.max.store(0, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_exports_gauge_value_and_high_water() {
        let snap = MetricsSnapshot {
            entries: vec![MetricEntry {
                name: "bab.frontier_depth",
                value: MetricValue::Gauge {
                    value: 3,
                    high_water: 7,
                },
            }],
        };
        let s = snap.scalars();
        assert!(s.contains(&("bab.frontier_depth".to_string(), 7.0)));
        assert!(s.contains(&("bab.frontier_depth.value".to_string(), 3.0)));
    }

    #[test]
    fn bucket_roundtrip_bounds() {
        for v in [0u64, 1, 15, 16, 17, 100, 1000, 65_535, 1 << 40] {
            let idx = bucket_index(v);
            let upper = bucket_upper(idx);
            assert!(upper >= v, "upper {upper} < v {v}");
            // Relative error bound: upper <= v * (1 + 1/16) for v >= 16.
            if v >= 16 {
                assert!((upper as f64) <= v as f64 * (1.0 + 1.0 / 16.0) + 1.0);
            }
        }
    }
}
