//! Windowed-aggregate tests: epoch-ring rollover, monotonic clock skew
//! tolerance, empty-window percentiles, cross-thread contention, and a
//! property test of the window-sum model.
//!
//! All tests drive explicit epoch numbers through the `*_at_epoch` hooks
//! so nothing depends on wall-clock timing. The windowed registry is
//! process-global, so tests serialize on `LOCK` (the same convention as
//! `tests/obs.rs`) and use per-test metric names.

use std::sync::Mutex;

use certnn_obs::{windowed_counter, windowed_histogram, WINDOW_EPOCHS};
use proptest::prelude::*;

static LOCK: Mutex<()> = Mutex::new(());

fn guard() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn rate_counts_only_the_trailing_window() {
    let _g = guard();
    let c = windowed_counter("test.win.trailing");
    c.add_at_epoch(100, 30);
    c.add_at_epoch(104, 40);
    // Epoch 100 is inside the window seen from 104 ([95, 104])...
    assert_eq!(c.rate_at_epoch(104), 70.0 / WINDOW_EPOCHS as f64);
    // ...but outside the window seen from 111 ([102, 111]).
    assert_eq!(c.rate_at_epoch(111), 40.0 / WINDOW_EPOCHS as f64);
}

#[test]
fn ring_rollover_reclaims_slots_without_double_counting() {
    let _g = guard();
    let c = windowed_counter("test.win.rollover");
    // Epochs 5 and 5+16 share a ring slot; the newer epoch must evict the
    // older count, not add to it.
    c.add_at_epoch(5, 1000);
    c.add_at_epoch(21, 7);
    assert_eq!(c.rate_at_epoch(21), 7.0 / WINDOW_EPOCHS as f64);
    // Several laps around the ring stay exact.
    for lap in 0..10u64 {
        c.add_at_epoch(21 + lap * 16, 1);
    }
    let last = 21 + 9 * 16;
    assert_eq!(c.rate_at_epoch(last), 1.0 / WINDOW_EPOCHS as f64);
}

#[test]
fn clock_skew_laggard_is_attributed_to_the_newer_epoch() {
    let _g = guard();
    let c = windowed_counter("test.win.skew");
    // A thread that computed epoch 4 arrives after the shared slot
    // (4 % 16 == 20 % 16) was claimed for epoch 20. Its count must land
    // in the epoch-20 slot — visible from "now", never resurrecting the
    // stale epoch and never lost.
    c.add_at_epoch(20, 3);
    c.add_at_epoch(4, 2);
    assert_eq!(c.rate_at_epoch(20), 5.0 / WINDOW_EPOCHS as f64);
    // Skew by one epoch within the window behaves the same way.
    let h = windowed_histogram("test.win.skew_hist");
    h.record_at_epoch(50, 100);
    h.record_at_epoch(49, 100);
    assert_eq!(h.snapshot_at_epoch(50).count, 2);
}

#[test]
fn empty_window_percentiles_are_zero() {
    let _g = guard();
    let h = windowed_histogram("test.win.empty");
    let snap = h.snapshot_at_epoch(1000);
    assert_eq!(snap.count, 0);
    assert_eq!((snap.p50, snap.p95, snap.p99), (0, 0, 0));
    // A histogram whose samples have all aged out is empty again.
    h.record_at_epoch(10, 42);
    assert_eq!(h.snapshot_at_epoch(10).count, 1);
    assert_eq!(h.snapshot_at_epoch(10 + WINDOW_EPOCHS).count, 0);
    let c = windowed_counter("test.win.empty_rate");
    assert_eq!(c.rate_at_epoch(1000), 0.0);
}

#[test]
fn windowed_percentiles_track_the_distribution() {
    let _g = guard();
    let h = windowed_histogram("test.win.pct");
    for _ in 0..95 {
        h.record_at_epoch(7, 10);
    }
    for _ in 0..5 {
        h.record_at_epoch(7, 1_000_000);
    }
    let snap = h.snapshot_at_epoch(7);
    assert_eq!(snap.count, 100);
    // Values < 16 land in exact unit buckets.
    assert_eq!(snap.p50, 10);
    assert_eq!(snap.p95, 10);
    // p99 lands in the 1e6 bucket: within the 6.25% log-linear error.
    assert!(snap.p99 >= 1_000_000 && snap.p99 <= 1_070_000, "p99={}", snap.p99);
}

#[test]
fn cross_thread_recording_is_exact_within_an_epoch() {
    let _g = guard();
    let c = windowed_counter("test.win.contend");
    let h = windowed_histogram("test.win.contend_hist");
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;
    // All records target one fixed epoch, so the CAS claim races (the
    // only lossy path) cannot fire and totals must be exact.
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let c = c.clone();
            let h = h.clone();
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    c.add_at_epoch(33, 1);
                    h.record_at_epoch(33, i % 64);
                }
            });
        }
    });
    let expect = (THREADS as u64 * PER_THREAD) as f64 / WINDOW_EPOCHS as f64;
    assert_eq!(c.rate_at_epoch(33), expect);
    assert_eq!(h.snapshot_at_epoch(33).count, THREADS as u64 * PER_THREAD);
}

#[test]
fn registry_returns_shared_handles() {
    let _g = guard();
    let a = windowed_counter("test.win.shared");
    let b = windowed_counter("test.win.shared");
    a.add_at_epoch(60, 4);
    b.add_at_epoch(60, 6);
    assert_eq!(a.rate_at_epoch(60), 1.0);
    let snap = certnn_obs::window_snapshot();
    assert!(snap.entries.iter().any(|e| e.name == "test.win.shared"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Model check: because SLOTS (16) exceeds WINDOW_EPOCHS (10), slot
    // reuse can never evict an epoch that is still inside the snapshot
    // window — so for any nondecreasing record schedule, the observed
    // rate equals the plain sum over the trailing window.
    #[test]
    fn rate_matches_window_sum_model(
        deltas in prop::collection::vec((0u64..4, 1u64..100), 1..40),
    ) {
        let _g = guard();
        // Leak a unique name: the registry wants 'static, and each case
        // must not see a previous case's slots.
        static CASE: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        let case = CASE.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let name: &'static str = Box::leak(format!("test.win.prop.{case}").into_boxed_str());
        let c = windowed_counter(name);
        let mut epoch = 0u64;
        let mut log: Vec<(u64, u64)> = Vec::new();
        for &(step, n) in &deltas {
            epoch += step;
            c.add_at_epoch(epoch, n);
            log.push((epoch, n));
        }
        let lo = epoch.saturating_sub(WINDOW_EPOCHS - 1);
        let expect: u64 = log
            .iter()
            .filter(|(e, _)| *e >= lo && *e <= epoch)
            .map(|(_, n)| n)
            .sum();
        prop_assert_eq!(c.rate_at_epoch(epoch), expect as f64 / WINDOW_EPOCHS as f64);
    }
}
