//! Integration tests for certnn-obs: ring-buffer wraparound, histogram
//! percentile correctness, cross-thread span parenting, and the JSONL
//! schema round-trip.
//!
//! The obs layer is process-global, so every test serializes on LOCK and
//! calls `reset()` first.

use std::sync::Mutex;

use certnn_obs as obs;

static LOCK: Mutex<()> = Mutex::new(());

fn guarded() -> std::sync::MutexGuard<'static, ()> {
    let g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    obs::set_enabled(true);
    obs::reset();
    g
}

#[test]
fn ring_buffer_wraps_and_counts_drops() {
    let _g = guarded();
    obs::set_ring_capacity(8);

    // A fresh thread sizes its ring at the current capacity.
    std::thread::spawn(|| {
        for _ in 0..20 {
            let _s = obs::span("test.wrap");
        }
    })
    .join()
    .expect("worker");

    assert_eq!(obs::dropped_records(), 12, "20 spans into a ring of 8");
    let records = obs::drain();
    let spans = records
        .iter()
        .filter(|r| matches!(r, obs::Record::Span { name, .. } if *name == "test.wrap"))
        .count();
    assert_eq!(spans, 8, "only the newest ring-capacity records survive");
    assert_eq!(obs::dropped_records(), 0, "drain resets the drop counter");

    obs::set_ring_capacity(16_384);
}

#[test]
fn histogram_percentiles_within_bucket_error() {
    let _g = guarded();
    let h = obs::histogram("test.latency");
    for v in 1..=1000u64 {
        h.record(v);
    }
    let snap = h.snapshot();
    assert_eq!(snap.count, 1000);
    assert_eq!(snap.min, 1);
    assert_eq!(snap.max, 1000);
    assert_eq!(snap.sum, 500_500);
    // Log-linear buckets (16 per power of two) bound relative error at
    // ~6.25%; the reported value is the bucket's upper edge, so it can
    // only overshoot.
    for (p, exact) in [(snap.p50, 500.0), (snap.p95, 950.0), (snap.p99, 990.0)] {
        assert!(
            p as f64 >= exact && p as f64 <= exact * 1.07,
            "percentile {p} vs exact {exact}"
        );
    }

    // Small exact-bucket regime: values < 16 are exact.
    let h2 = obs::histogram("test.latency_small");
    for v in [3u64, 3, 3, 9] {
        h2.record(v);
    }
    let s2 = h2.snapshot();
    assert_eq!(s2.p50, 3);
    assert_eq!(s2.p99, 9);
}

#[test]
fn cross_thread_span_parenting() {
    let _g = guarded();

    let (root_id, child_ids) = {
        let root = obs::span("test.root");
        let root_id = root.id().expect("live span");
        assert_eq!(obs::current_span_id(), Some(root_id));

        let mut ids = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    s.spawn(move || {
                        let child = obs::span_child_of("test.worker", Some(root_id));
                        let id = child.id().expect("live span");
                        // Nested spans on the worker parent to the worker span,
                        // not the remote root.
                        let inner = obs::span("test.inner");
                        let inner_id = inner.id().expect("live span");
                        drop(inner);
                        (id, inner_id)
                    })
                })
                .collect();
            for h in handles {
                ids.push(h.join().expect("worker"));
            }
        });
        (root_id, ids)
    };

    let records = obs::drain();
    let parent_of = |id: u64| -> Option<u64> {
        records.iter().find_map(|r| match r {
            obs::Record::Span {
                id: rid, parent, ..
            } if *rid == id => *parent,
            _ => None,
        })
    };
    for (worker_id, inner_id) in child_ids {
        assert_eq!(parent_of(worker_id), Some(root_id), "worker → root");
        assert_eq!(parent_of(inner_id), Some(worker_id), "inner → worker");
    }
    assert_eq!(parent_of(root_id), None, "root has no parent");

    // Distinct obs thread ids for the three workers.
    let mut worker_threads: Vec<u64> = records
        .iter()
        .filter_map(|r| match r {
            obs::Record::Span { name, thread, .. } if *name == "test.worker" => Some(*thread),
            _ => None,
        })
        .collect();
    worker_threads.sort_unstable();
    worker_threads.dedup();
    assert_eq!(worker_threads.len(), 3);
}

#[test]
fn drain_jsonl_is_schema_valid() {
    let _g = guarded();
    {
        let _run = obs::span("test.run");
        obs::counter("test.things").add(5);
        obs::gauge("test.depth").set(7);
        obs::histogram("test.ns").record(123);
        obs::event(
            "test.fault",
            vec![
                ("worker", 2u64.into()),
                ("reason", "panic: injected".into()),
                ("ok", false.into()),
            ],
        );
        let _p = obs::phase(obs::Phase::Bound);
    }
    let text = obs::drain_jsonl();
    let summary = obs::jsonl::validate_trace(&text).expect("schema-valid JSONL");
    assert!(summary.spans >= 1);
    assert_eq!(summary.events, 1);
    assert!(summary.has_metrics && summary.has_profile);
    assert!(summary.counter_names.iter().any(|n| n == "test.things"));
    assert!(summary.histogram_names.iter().any(|n| n == "test.ns"));
    assert!(summary.phase_names.iter().any(|n| n == "bound"));
}

#[test]
fn disabled_layer_records_nothing() {
    let _g = guarded();
    obs::set_enabled(false);
    {
        let s = obs::span("test.off");
        assert!(s.id().is_none());
        obs::counter("test.off_counter").inc();
        obs::histogram("test.off_hist").record(9);
        let _p = obs::phase(obs::Phase::Encode);
    }
    obs::set_enabled(true); // so drain sees buffered state (there is none)
    let records = obs::drain();
    assert!(
        !records
            .iter()
            .any(|r| matches!(r, obs::Record::Span { name, .. } if name.starts_with("test.off"))),
        "no spans recorded while disabled"
    );
    assert_eq!(obs::counter("test.off_counter").get(), 0);
}
