//! Chaos suite for the verification layer: injected worker panics,
//! numeric faults and stalls must never cross the public API as a crash,
//! every verdict must carry a sound bound, and the reported
//! [`Degradation`] must say honestly how the answer was obtained.
//!
//! Runs only with `--features fault-inject`.

#![cfg(feature = "fault-inject")]

use certnn_lp::fault::{self, FaultPlan};
use certnn_linalg::{Interval, Vector};
use certnn_milp::MilpStatus;
use certnn_nn::network::Network;
use certnn_verify::bab::{bab_maximize, BabOptions};
use certnn_verify::property::{InputSpec, LinearObjective};
use certnn_verify::verifier::{Engine, Verifier, VerifierOptions};
use certnn_verify::{Deadline, Degradation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

fn fixture(seed: u64) -> (Network, InputSpec, LinearObjective) {
    let net = Network::relu_mlp(4, &[10, 10], 1, seed).unwrap();
    let spec = InputSpec::from_box(vec![Interval::new(-1.0, 1.0); 4]).unwrap();
    (net, spec, LinearObjective::output(0))
}

/// Fault-free exact maximum, the soundness reference for every chaos run.
fn clean_exact(net: &Network, spec: &InputSpec, obj: &LinearObjective) -> f64 {
    fault::clear();
    let r = bab_maximize(net, spec, obj, &BabOptions::default()).unwrap();
    assert_eq!(r.status, MilpStatus::Optimal);
    assert_eq!(r.degradation, Degradation::Exact);
    r.best_value.unwrap()
}

/// A sampled lower bound on the true maximum: any sound upper bound must
/// dominate it regardless of what the faults destroyed.
fn sampled_floor(net: &Network, n: usize) -> f64 {
    let mut rng = StdRng::seed_from_u64(7);
    let mut best = f64::NEG_INFINITY;
    for _ in 0..n {
        let x: Vector = (0..net.inputs()).map(|_| rng.gen_range(-1.0..=1.0)).collect();
        best = best.max(net.forward(&x).unwrap()[0]);
    }
    best
}

#[test]
fn injected_worker_panics_are_isolated_and_bounds_stay_sound() {
    let _g = fault::serial_guard();
    let (net, spec, obj) = fixture(17);
    let exact = clean_exact(&net, &spec, &obj);
    // Every third node attempt panics mid-processing, across two workers.
    // The per-node catch_unwind must retry or fold each one: no panic may
    // cross bab_maximize, and the bound must still dominate the optimum.
    fault::install(FaultPlan::panic_only(3));
    let opts = BabOptions {
        threads: 2,
        ..BabOptions::default()
    };
    let mut degraded = 0usize;
    for _ in 0..4 {
        let r = bab_maximize(&net, &spec, &obj, &opts).unwrap();
        assert!(
            r.upper_bound >= exact - 1e-6,
            "unsound bound {} < optimum {exact} (status {:?})",
            r.upper_bound,
            r.status
        );
        // Incumbents are genuine forward passes even under panics.
        if let (Some(w), Some(v)) = (&r.witness, r.best_value) {
            assert!((net.forward(w).unwrap()[0] - v).abs() < 1e-6);
            assert!(v <= exact + 1e-6, "witness value above the true maximum");
        }
        if r.degradation > Degradation::Exact {
            degraded += 1;
        }
    }
    fault::clear();
    assert!(degraded > 0, "panics every 3 nodes never surfaced in 4 runs");
}

#[test]
fn total_panic_storm_still_returns_a_sound_interval_verdict() {
    let _g = fault::serial_guard();
    let (net, spec, obj) = fixture(17);
    let exact = clean_exact(&net, &spec, &obj);
    // Every node attempt panics: retries are exhausted immediately and
    // every subtree folds into the dropped-bound accumulator. The search
    // must terminate (not hang) with the root interval/symbolic bound and
    // an honest degradation tag.
    fault::install(FaultPlan::panic_only(1));
    let r = bab_maximize(&net, &spec, &obj, &BabOptions::default()).unwrap();
    fault::clear();
    assert!(
        r.upper_bound >= exact - 1e-6,
        "unsound bound {} < optimum {exact}",
        r.upper_bound
    );
    assert!(
        r.degradation >= Degradation::IntervalOnly,
        "storm run must report interval degradation, got {:?}",
        r.degradation
    );
    assert_ne!(
        r.status,
        MilpStatus::Optimal,
        "nothing was explored; claiming optimality would be a lie"
    );
}

#[test]
fn dense_numeric_faults_keep_the_hybrid_search_sound() {
    let _g = fault::serial_guard();
    let (net, spec, obj) = fixture(29);
    let exact = clean_exact(&net, &spec, &obj);
    // Hammer every other refactorisation: LP bounding and sub-MILP solves
    // keep failing into the interval rungs of the ladder. With LP pruning
    // mostly gone the phase tree degenerates towards full enumeration, so
    // cap the nodes — the bound must be sound however the search stops.
    fault::install(FaultPlan::singular_only(2));
    let opts = BabOptions {
        node_limit: Some(300),
        ..BabOptions::default()
    };
    for _ in 0..3 {
        let r = bab_maximize(&net, &spec, &obj, &opts).unwrap();
        assert!(
            r.upper_bound >= exact - 1e-6,
            "unsound bound {} < optimum {exact} (status {:?}, degradation {:?})",
            r.upper_bound,
            r.status,
            r.degradation
        );
        if r.status == MilpStatus::Optimal {
            assert!((r.best_value.unwrap() - exact).abs() < 1e-5);
        }
    }
    fault::clear();
}

#[test]
fn nan_poisoning_cannot_tighten_a_verify_bound_past_the_optimum() {
    let _g = fault::serial_guard();
    let (net, spec, obj) = fixture(29);
    let exact = clean_exact(&net, &spec, &obj);
    // Node-capped for the same reason as the singular-fault test: dense
    // poisoning disables LP pruning and the uncapped tree is huge.
    fault::install(FaultPlan::nan_only(5));
    let opts = BabOptions {
        node_limit: Some(300),
        ..BabOptions::default()
    };
    for _ in 0..3 {
        let r = bab_maximize(&net, &spec, &obj, &opts).unwrap();
        assert!(
            r.upper_bound >= exact - 1e-6,
            "NaN poisoning produced unsound bound {} < {exact}",
            r.upper_bound
        );
    }
    fault::clear();
}

#[test]
fn stalled_pivots_plus_deadline_time_out_promptly_and_honestly() {
    let _g = fault::serial_guard();
    let (net, _, _) = fixture(41);
    let floor = sampled_floor(&net, 500);
    let spec = InputSpec::from_box(vec![Interval::new(-1.0, 1.0); 4]).unwrap();
    let obj = LinearObjective::output(0);
    // Every pivot batch sleeps 3ms against a 10ms budget: expiry must be
    // caught inside the LP layer, surface as TimeLimit + TimedOut in the
    // verifier stats, and still report a bound above the sampled floor.
    fault::install(FaultPlan::stall_only(1, 3));
    let v = Verifier::with_options(VerifierOptions {
        engine: Engine::HybridBab,
        time_limit: Some(Duration::from_millis(10)),
        ..VerifierOptions::default()
    });
    let t0 = Instant::now();
    let r = v.maximize(&net, &spec, &obj).unwrap();
    let elapsed = t0.elapsed();
    fault::clear();
    assert_eq!(r.status, MilpStatus::TimeLimit);
    assert_eq!(r.stats.degradation, Degradation::TimedOut);
    assert!(
        elapsed < Duration::from_millis(1000),
        "deadline exit took {elapsed:?} against a 10ms budget"
    );
    assert!(
        r.upper_bound >= floor - 1e-6,
        "timed-out bound {} below sampled reachable value {floor}",
        r.upper_bound
    );
}

#[test]
fn ambient_cancellation_preempts_a_query_through_the_verifier() {
    let _g = fault::serial_guard();
    fault::clear();
    let (net, spec, obj) = fixture(53);
    let floor = sampled_floor(&net, 200);
    let d = Deadline::cancellable();
    d.cancel();
    for engine in [Engine::HybridBab, Engine::Milp] {
        let v = Verifier::with_options(VerifierOptions {
            engine,
            ..VerifierOptions::default()
        })
        .with_deadline(d.clone());
        let t0 = Instant::now();
        let r = v.maximize(&net, &spec, &obj).unwrap();
        assert!(
            t0.elapsed() < Duration::from_millis(500),
            "cancelled {engine:?} query did not return promptly"
        );
        assert_eq!(r.status, MilpStatus::TimeLimit, "engine {engine:?}");
        assert_eq!(r.stats.degradation, Degradation::TimedOut, "engine {engine:?}");
        assert!(r.upper_bound >= floor - 1e-6, "engine {engine:?}");
    }
}

#[test]
fn fault_free_queries_report_exact_degradation_on_both_engines() {
    let _g = fault::serial_guard();
    fault::clear();
    let (net, spec, obj) = fixture(61);
    let mut values = Vec::new();
    for engine in [Engine::HybridBab, Engine::Milp] {
        let v = Verifier::with_options(VerifierOptions {
            engine,
            ..VerifierOptions::default()
        });
        let r = v.maximize(&net, &spec, &obj).unwrap();
        assert!(r.is_exact(), "engine {engine:?}");
        assert_eq!(r.stats.degradation, Degradation::Exact, "engine {engine:?}");
        values.push(r.exact_max().unwrap());
    }
    assert!(
        (values[0] - values[1]).abs() < 1e-5,
        "engines disagree under no faults: {values:?}"
    );
}
