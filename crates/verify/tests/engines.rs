//! Property-based cross-engine equivalence: the hybrid neuron
//! branch-and-bound and the pure big-M MILP must compute identical exact
//! maxima on every random instance, and the gradient falsifier must never
//! beat either.

use certnn_linalg::{Interval, Vector};
use certnn_nn::network::Network;
use certnn_verify::attack::Falsifier;
use certnn_verify::property::{InputSpec, LinearObjective};
use certnn_verify::verifier::{Engine, Verifier, VerifierOptions};
use proptest::prelude::*;

fn engine_verifier(engine: Engine) -> Verifier {
    Verifier::with_options(VerifierOptions {
        engine,
        ..VerifierOptions::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn bab_and_milp_agree_exactly(
        inputs in 2usize..5,
        width in 3usize..7,
        layers in 1usize..3,
        seed in any::<u64>(),
        lo in (-15i32..=0).prop_map(|v| v as f64 / 10.0),
        span in (5i32..=20).prop_map(|v| v as f64 / 10.0),
    ) {
        let net = Network::relu_mlp(inputs, &vec![width; layers], 2, seed).unwrap();
        let spec = InputSpec::from_box(vec![Interval::new(lo, lo + span); inputs]).unwrap();
        let obj = LinearObjective::combination(vec![(0, 1.0), (1, -0.5)]);

        let bab = engine_verifier(Engine::HybridBab)
            .maximize(&net, &spec, &obj)
            .unwrap();
        let milp = engine_verifier(Engine::Milp)
            .maximize(&net, &spec, &obj)
            .unwrap();
        prop_assert!(bab.is_exact(), "bab did not close");
        prop_assert!(milp.is_exact(), "milp did not close");
        let (b, m) = (bab.exact_max().unwrap(), milp.exact_max().unwrap());
        prop_assert!((b - m).abs() < 1e-5, "bab {b} vs milp {m}");

        // Both witnesses are genuine and inside the spec.
        for r in [&bab, &milp] {
            let w = r.witness.as_ref().unwrap();
            prop_assert!(spec.contains(w, 1e-6));
            let v = obj.eval(&net.forward(w).unwrap());
            prop_assert!((v - r.best_value.unwrap()).abs() < 1e-9);
        }

        // The incomplete falsifier can approach but never exceed the max.
        let attack = Falsifier::new().attack(&net, &spec, &obj).unwrap();
        prop_assert!(attack.best_value <= b + 1e-6);
    }

    #[test]
    fn prove_below_consistent_across_engines(
        seed in any::<u64>(),
        margin in (-5i32..=5).prop_map(|v| v as f64 / 10.0),
    ) {
        let net = Network::relu_mlp(3, &[6, 6], 1, seed).unwrap();
        let spec = InputSpec::from_box(vec![Interval::new(-1.0, 1.0); 3]).unwrap();
        let obj = LinearObjective::output(0);
        let exact = engine_verifier(Engine::Milp)
            .maximize(&net, &spec, &obj)
            .unwrap()
            .exact_max()
            .unwrap();
        prop_assume!(margin.abs() > 0.05); // avoid the knife edge
        let threshold = exact + margin;
        for engine in [Engine::HybridBab, Engine::Milp] {
            let (verdict, _) = engine_verifier(engine)
                .prove_below(&net, &spec, &obj, threshold)
                .unwrap();
            if margin > 0.0 {
                prop_assert!(verdict.holds(), "{engine:?} refuted a true bound");
            } else {
                prop_assert!(!verdict.holds(), "{engine:?} proved a false bound");
            }
        }
    }
}

#[test]
fn witness_values_sampled_never_beat_any_engine() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let net = Network::relu_mlp(5, &[9, 9], 1, 321).expect("valid architecture");
    let spec = InputSpec::from_box(vec![Interval::new(-1.0, 1.0); 5]).expect("box");
    let obj = LinearObjective::output(0);
    let values: Vec<f64> = [Engine::HybridBab, Engine::Milp]
        .into_iter()
        .map(|e| {
            engine_verifier(e)
                .maximize(&net, &spec, &obj)
                .expect("verifies")
                .exact_max()
                .expect("closes")
        })
        .collect();
    assert!((values[0] - values[1]).abs() < 1e-5);
    let mut rng = StdRng::seed_from_u64(8);
    for _ in 0..5000 {
        let x: Vector = (0..5).map(|_| rng.gen_range(-1.0..=1.0)).collect();
        let v = net.forward(&x).expect("forward")[0];
        assert!(v <= values[0] + 1e-6);
    }
}
