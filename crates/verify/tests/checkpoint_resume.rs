//! Resume-equivalence contract of the crash-safe checkpoint layer:
//! interrupting a solve at an arbitrary point and resuming from its
//! snapshot must reproduce the uninterrupted run's verdict, node count
//! and degradation tag exactly — and a corrupted or mismatched snapshot
//! must never be accepted, degrading to a fresh solve instead.

use certnn_linalg::Interval;
use certnn_lp::Deadline;
use certnn_nn::network::Network;
use certnn_verify::bab::{bab_maximize_ckpt, bab_maximize_under, BabOptions, BabResult};
use certnn_verify::checkpoint::{
    decode_snapshot, encode_snapshot, CheckpointPolicy, DEFAULT_EVERY,
};
use certnn_verify::property::{InputSpec, LinearObjective};
use certnn_verify::Degradation;
use std::path::{Path, PathBuf};

fn unit_spec(n: usize) -> InputSpec {
    InputSpec::from_box(vec![Interval::new(-1.0, 1.0); n]).unwrap()
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "certnn_resume_{tag}_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn ckpt_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "ckpt"))
        .collect();
    files.sort();
    files
}

fn policy(dir: &Path) -> CheckpointPolicy {
    CheckpointPolicy {
        dir: dir.to_path_buf(),
        every_nodes: 1,
        every: DEFAULT_EVERY,
        seed: 7,
        resume: true,
    }
}

fn solve(
    net: &Network,
    opts: &BabOptions,
    ckpt: Option<&CheckpointPolicy>,
) -> BabResult {
    let spec = unit_spec(net.inputs());
    let obj = LinearObjective::output(0);
    bab_maximize_ckpt(net, &spec, &obj, opts, Deadline::none(), ckpt).unwrap()
}

#[test]
fn interrupted_and_resumed_run_matches_uninterrupted_exactly() {
    let net = Network::relu_mlp(4, &[10, 10], 1, 3).unwrap();
    let opts = BabOptions::default();
    let spec = unit_spec(4);
    let obj = LinearObjective::output(0);
    let full = bab_maximize_under(&net, &spec, &obj, &opts, Deadline::none()).unwrap();
    let full_value = full.best_value.unwrap();
    assert!(full.nodes >= 9, "test net too easy ({} nodes)", full.nodes);

    // Interrupt at several different depths of the search.
    for frac in [3usize, 2] {
        let dir = scratch_dir(&format!("eq{frac}"));
        let pol = policy(&dir);
        let limited = BabOptions {
            node_limit: Some((full.nodes / frac).max(2)),
            ..opts
        };
        let first = solve(&net, &limited, Some(&pol));
        assert_eq!(first.status, certnn_milp::MilpStatus::NodeLimit);
        assert_eq!(
            ckpt_files(&dir).len(),
            1,
            "an interrupted run must leave exactly one resumable snapshot"
        );

        let second = solve(&net, &opts, Some(&pol));
        assert_eq!(second.status, full.status);
        assert_eq!(
            second.best_value.unwrap().to_bits(),
            full_value.to_bits(),
            "resumed verdict must be bit-identical to the uninterrupted run"
        );
        assert_eq!(
            second.upper_bound.to_bits(),
            full.upper_bound.to_bits(),
            "resumed proven bound must match"
        );
        assert_eq!(
            second.nodes, full.nodes,
            "cumulative node count must match the uninterrupted run"
        );
        assert_eq!(second.degradation, full.degradation);
        assert_eq!(second.degradation, Degradation::Exact);
        assert!(
            ckpt_files(&dir).is_empty(),
            "a completed query must delete its snapshot"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn repeated_interruptions_accumulate_to_the_same_answer() {
    // Anytime verification: keep stopping and resuming until done; every
    // leg is bounded, the union reproduces the one-shot run.
    let net = Network::relu_mlp(4, &[10, 10], 1, 11).unwrap();
    let opts = BabOptions::default();
    let full = solve(&net, &opts, None);
    let full_value = full.best_value.unwrap();

    let dir = scratch_dir("chain");
    let pol = policy(&dir);
    let step = (full.nodes / 4).max(1);
    let mut legs = 0usize;
    let finished = loop {
        legs += 1;
        assert!(legs <= 64, "resume chain failed to converge");
        let limited = BabOptions {
            node_limit: Some(step * legs),
            ..opts
        };
        let r = solve(&net, &limited, Some(&pol));
        if r.status != certnn_milp::MilpStatus::NodeLimit {
            break r;
        }
        assert_eq!(ckpt_files(&dir).len(), 1);
    };
    assert!(legs >= 3, "expected several interrupted legs, got {legs}");
    assert_eq!(finished.status, full.status);
    assert_eq!(finished.best_value.unwrap().to_bits(), full_value.to_bits());
    assert_eq!(finished.nodes, full.nodes);
    assert_eq!(finished.degradation, Degradation::Exact);
    assert!(ckpt_files(&dir).is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_snapshot_falls_back_to_fresh_solve_with_tag() {
    let net = Network::relu_mlp(4, &[10, 10], 1, 3).unwrap();
    let opts = BabOptions::default();
    let full = solve(&net, &opts, None);

    let dir = scratch_dir("corrupt");
    let pol = policy(&dir);
    let limited = BabOptions {
        node_limit: Some((full.nodes / 3).max(2)),
        ..opts
    };
    solve(&net, &limited, Some(&pol));
    let file = ckpt_files(&dir).pop().expect("snapshot must exist");

    // Flip one byte in the middle of the file: the resume must detect it,
    // never trust it, and fall back to a fresh solve that still reaches
    // the uninterrupted verdict — tagged, not errored.
    let mut bytes = std::fs::read(&file).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&file, &bytes).unwrap();

    let r = solve(&net, &opts, Some(&pol));
    assert_eq!(r.status, certnn_milp::MilpStatus::Optimal);
    assert_eq!(
        r.best_value.unwrap().to_bits(),
        full.best_value.unwrap().to_bits(),
        "fallback solve must still find the true optimum"
    );
    assert_eq!(
        r.degradation,
        Degradation::CheckpointFallback,
        "a rejected snapshot must be surfaced as CheckpointFallback"
    );
    // The fresh solve restarts from scratch: its node count equals the
    // uninterrupted run's, not the salvaged continuation's.
    assert_eq!(r.nodes, full.nodes);
    assert!(ckpt_files(&dir).is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn query_mismatch_is_rejected_even_with_valid_checksums() {
    let net = Network::relu_mlp(4, &[10, 10], 1, 3).unwrap();
    let opts = BabOptions::default();
    let dir = scratch_dir("mismatch");
    let pol = policy(&dir);
    let limited = BabOptions {
        node_limit: Some(3),
        ..opts
    };
    solve(&net, &limited, Some(&pol));
    let file = ckpt_files(&dir).pop().expect("snapshot must exist");

    // Re-encode the snapshot with a different query hash: checksums are
    // valid, the content-address is not. The resume must reject it.
    let mut snap = decode_snapshot(&std::fs::read(&file).unwrap()).unwrap();
    snap.query_hash ^= 1;
    std::fs::write(&file, encode_snapshot(&snap)).unwrap();

    let r = solve(&net, &opts, Some(&pol));
    assert_eq!(r.status, certnn_milp::MilpStatus::Optimal);
    assert_eq!(r.degradation, Degradation::CheckpointFallback);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpointing_on_a_clean_run_changes_nothing_and_leaves_no_file() {
    let net = Network::relu_mlp(4, &[10, 10], 1, 5).unwrap();
    let opts = BabOptions::default();
    let plain = solve(&net, &opts, None);
    let dir = scratch_dir("clean");
    let pol = CheckpointPolicy {
        resume: false,
        ..policy(&dir)
    };
    let with_ckpt = solve(&net, &opts, Some(&pol));
    assert_eq!(
        with_ckpt.best_value.unwrap().to_bits(),
        plain.best_value.unwrap().to_bits()
    );
    assert_eq!(with_ckpt.nodes, plain.nodes);
    assert_eq!(with_ckpt.degradation, plain.degradation);
    assert!(
        ckpt_files(&dir).is_empty(),
        "a completed query must not leave a snapshot behind"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
