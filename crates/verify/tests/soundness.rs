//! Property-based soundness tests for the verification stack.

use certnn_linalg::{Interval, Vector};
use certnn_nn::network::Network;
use certnn_verify::bounds::{interval_bounds, symbolic_bounds};
use certnn_verify::encoder::BoundMethod;
use certnn_verify::property::{InputSpec, LinearObjective};
use certnn_verify::verifier::{Verifier, VerifierOptions};
use proptest::prelude::*;

fn arch() -> impl Strategy<Value = (usize, Vec<usize>, usize, u64)> {
    (
        1usize..4,                                // inputs
        prop::collection::vec(2usize..6, 1..3),   // hidden widths
        1usize..3,                                // outputs
        any::<u64>(),                             // seed
    )
}

fn boxes(n: usize) -> impl Strategy<Value = Vec<Interval>> {
    prop::collection::vec(
        (-20i32..=19).prop_flat_map(|lo| {
            (1i32..=8).prop_map(move |w| {
                Interval::new(lo as f64 / 10.0, (lo + w) as f64 / 10.0)
            })
        }),
        n..=n,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Both bound analyses contain every sampled forward pass.
    #[test]
    fn bounds_contain_sampled_traces(
        (inputs, hidden, outputs, seed) in arch(),
        frac in prop::collection::vec(0.0f64..=1.0, 16),
    ) {
        let net = Network::relu_mlp(inputs, &hidden, outputs, seed).unwrap();
        let ib: Vec<Interval> = (0..inputs)
            .map(|i| Interval::new(-0.5 - (i as f64) * 0.1, 0.7))
            .collect();
        let nb_i = interval_bounds(&net, &ib).unwrap();
        let nb_s = symbolic_bounds(&net, &ib).unwrap();
        for chunk in frac.chunks(inputs.max(1)).take(4) {
            if chunk.len() < inputs { break; }
            let x: Vector = ib
                .iter()
                .zip(chunk)
                .map(|(iv, t)| iv.lo() + t * iv.width())
                .collect();
            let trace = net.forward_trace(&x).unwrap();
            for (l, z) in trace.pre_activations.iter().enumerate() {
                for j in 0..z.len() {
                    prop_assert!(nb_i.pre[l][j].widened(1e-7).contains(z[j]));
                    prop_assert!(nb_s.pre[l][j].widened(1e-7).contains(z[j]));
                }
            }
        }
    }

    /// The MILP maximum dominates every sampled objective value, the
    /// witness reproduces the claimed value, and both presolve methods
    /// agree on the optimum.
    #[test]
    fn milp_maximum_is_sound_and_method_independent(
        (inputs, hidden, outputs, seed) in arch(),
        ib in (1usize..4).prop_flat_map(boxes),
        frac in prop::collection::vec(0.0f64..=1.0, 24),
    ) {
        prop_assume!(ib.len() == inputs);
        let net = Network::relu_mlp(inputs, &hidden, outputs, seed).unwrap();
        let spec = InputSpec::from_box(ib.clone()).unwrap();
        let obj = LinearObjective::output(0);
        let exact = |method| {
            Verifier::with_options(VerifierOptions {
                bound_method: method,
                ..VerifierOptions::default()
            })
            .maximize(&net, &spec, &obj)
            .unwrap()
        };
        let sym = exact(BoundMethod::Symbolic);
        prop_assert!(sym.is_exact());
        let max = sym.exact_max().unwrap();
        // Witness reproduces (also checked internally, assert to be sure).
        let w = sym.witness.as_ref().unwrap();
        prop_assert!(spec.contains(w, 1e-6));
        prop_assert!((net.forward(w).unwrap()[0] - max).abs() < 1e-6);
        // Sampling never beats the verified maximum.
        for chunk in frac.chunks(inputs.max(1)).take(6) {
            if chunk.len() < inputs { break; }
            let x: Vector = ib
                .iter()
                .zip(chunk)
                .map(|(iv, t)| iv.lo() + t * iv.width())
                .collect();
            let v = net.forward(&x).unwrap()[0];
            prop_assert!(v <= max + 1e-6, "sample {v} beats verified max {max}");
        }
        // Interval presolve reaches the same optimum.
        let iv = exact(BoundMethod::Interval);
        prop_assert!(iv.is_exact());
        prop_assert!((iv.exact_max().unwrap() - max).abs() < 1e-5);
    }

    /// Shrinking the input box can never increase the verified maximum.
    #[test]
    fn monotonicity_in_the_input_box(
        (inputs, hidden, _outputs, seed) in arch(),
        shrink in 0.05f64..0.45,
    ) {
        let net = Network::relu_mlp(inputs, &hidden, 1, seed).unwrap();
        let wide: Vec<Interval> = vec![Interval::new(-1.0, 1.0); inputs];
        let narrow: Vec<Interval> = wide
            .iter()
            .map(|iv| Interval::new(iv.lo() + shrink, iv.hi() - shrink))
            .collect();
        let obj = LinearObjective::output(0);
        let v = Verifier::new();
        let big = v
            .maximize(&net, &InputSpec::from_box(wide).unwrap(), &obj)
            .unwrap()
            .exact_max()
            .unwrap();
        let small = v
            .maximize(&net, &InputSpec::from_box(narrow).unwrap(), &obj)
            .unwrap()
            .exact_max()
            .unwrap();
        prop_assert!(small <= big + 1e-6, "narrow {small} > wide {big}");
    }
}
