//! Local robustness and maximum resilience.
//!
//! The verification methodology the paper applies comes from Cheng et al.,
//! *Maximum Resilience of Artificial Neural Networks* (ATVA 2017): the
//! headline quantity there is the largest input perturbation a network
//! tolerates before its decision changes. This module implements both
//! query forms on top of the same MILP engine:
//!
//! * [`verify_robust`] — decide whether the objective stays within
//!   `±delta` of its value at a centre point for every input in an
//!   L∞-ball of radius `epsilon` (clipped to the feature box).
//! * [`maximum_resilience`] — binary-search the largest such `epsilon`,
//!   i.e. the network's resilience at that point.

use crate::property::{InputSpec, LinearObjective};
use crate::verifier::{Verdict, Verifier};
use crate::VerifyError;
use certnn_linalg::{Interval, Vector};
use certnn_nn::network::Network;

/// Result of a robustness decision at one radius.
#[derive(Debug, Clone, PartialEq)]
pub enum RobustnessVerdict {
    /// The objective stays within `±delta` across the whole ball.
    Robust,
    /// A perturbation inside the ball moves the objective beyond `delta`.
    Fragile {
        /// The violating input.
        witness: Vector,
        /// Objective deviation achieved by the witness.
        deviation: f64,
    },
    /// Resource limits prevented a decision.
    Unknown,
}

impl RobustnessVerdict {
    /// `true` for [`RobustnessVerdict::Robust`].
    pub fn is_robust(&self) -> bool {
        matches!(self, RobustnessVerdict::Robust)
    }
}

/// The L∞-ball of radius `epsilon` around `centre`, intersected with the
/// feature box of `domain`.
///
/// # Errors
///
/// Returns [`VerifyError::SpecMismatch`] if `centre` does not match the
/// domain width.
pub fn ball_spec(
    domain: &InputSpec,
    centre: &Vector,
    epsilon: f64,
) -> Result<InputSpec, VerifyError> {
    if centre.len() != domain.num_inputs() {
        return Err(VerifyError::SpecMismatch {
            network_inputs: domain.num_inputs(),
            spec_inputs: centre.len(),
        });
    }
    let bounds: Vec<Interval> = domain
        .bounds()
        .iter()
        .zip(centre.iter())
        .map(|(b, &c)| {
            let lo = (c - epsilon).max(b.lo());
            let hi = (c + epsilon).min(b.hi());
            // A centre inside the box always leaves a nonempty slice; a
            // centre pinned on a degenerate bound keeps that bound.
            if lo <= hi {
                Interval::new(lo, hi)
            } else {
                Interval::point(b.lo().max(b.hi().min(c)))
            }
        })
        .collect();
    let mut spec = InputSpec::from_box(bounds)?;
    for c in domain.constraints() {
        spec = spec.constrain(c.clone());
    }
    Ok(spec)
}

/// Decides local robustness: for all `x` with `‖x − centre‖∞ ≤ epsilon`
/// (inside the domain box), `|f(out(x)) − f(out(centre))| ≤ delta`.
///
/// # Errors
///
/// Returns [`VerifyError`] on malformed inputs.
pub fn verify_robust(
    verifier: &Verifier,
    net: &Network,
    domain: &InputSpec,
    centre: &Vector,
    epsilon: f64,
    objective: &LinearObjective,
    delta: f64,
) -> Result<RobustnessVerdict, VerifyError> {
    let base = objective.eval(&net.forward(centre)?);
    let spec = ball_spec(domain, centre, epsilon)?;

    // Upper side: f ≤ base + delta.
    let (up, _) = verifier.prove_below(net, &spec, objective, base + delta)?;
    match up {
        Verdict::Violated { witness, value } => {
            return Ok(RobustnessVerdict::Fragile {
                witness,
                deviation: value - base,
            })
        }
        Verdict::Unknown { .. } => return Ok(RobustnessVerdict::Unknown),
        Verdict::Holds { .. } => {}
    }
    // Lower side: −f ≤ −base + delta.
    let negated = LinearObjective {
        terms: objective.terms.iter().map(|&(i, c)| (i, -c)).collect(),
        constant: -objective.constant,
    };
    let (down, _) = verifier.prove_below(net, &spec, &negated, -base + delta)?;
    match down {
        // value = g(w) = −f(w), so the signed deviation f(w) − base is
        // −value − base (necessarily below −delta here).
        Verdict::Violated { witness, value } => Ok(RobustnessVerdict::Fragile {
            witness,
            deviation: -value - base,
        }),
        Verdict::Unknown { .. } => Ok(RobustnessVerdict::Unknown),
        Verdict::Holds { .. } => Ok(RobustnessVerdict::Robust),
    }
}

/// Result of a maximum-resilience search.
#[derive(Debug, Clone, PartialEq)]
pub struct Resilience {
    /// Largest radius proven robust.
    pub robust_radius: f64,
    /// Smallest radius proven fragile, `None` if even the largest probed
    /// radius is robust.
    pub fragile_radius: Option<f64>,
    /// Number of MILP decisions performed.
    pub queries: usize,
}

/// Binary-searches the maximum resilience radius at `centre` within
/// `[0, max_epsilon]`, to absolute precision `tol`.
///
/// # Errors
///
/// Returns [`VerifyError`] on malformed inputs.
///
/// # Panics
///
/// Panics if `max_epsilon <= 0` or `tol <= 0`.
#[allow(clippy::too_many_arguments)] // the query genuinely has this arity
pub fn maximum_resilience(
    verifier: &Verifier,
    net: &Network,
    domain: &InputSpec,
    centre: &Vector,
    objective: &LinearObjective,
    delta: f64,
    max_epsilon: f64,
    tol: f64,
) -> Result<Resilience, VerifyError> {
    assert!(max_epsilon > 0.0, "max_epsilon must be positive");
    assert!(tol > 0.0, "tol must be positive");
    let mut lo = 0.0; // proven robust
    let mut hi: Option<f64> = None; // proven fragile
    let mut probe = max_epsilon;
    let mut queries = 0;
    loop {
        let verdict = verify_robust(verifier, net, domain, centre, probe, objective, delta)?;
        queries += 1;
        match verdict {
            RobustnessVerdict::Robust => lo = probe,
            RobustnessVerdict::Fragile { .. } => hi = Some(probe),
            RobustnessVerdict::Unknown => {
                // Treat as fragile for the search (sound: we only *claim*
                // robustness for radii proven robust).
                hi = Some(probe);
            }
        }
        let upper = hi.unwrap_or(max_epsilon);
        if hi.is_none() && lo >= max_epsilon {
            break;
        }
        if upper - lo <= tol {
            break;
        }
        probe = 0.5 * (lo + upper);
    }
    Ok(Resilience {
        robust_radius: lo,
        fragile_radius: hi,
        queries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use certnn_linalg::Matrix;
    use certnn_nn::activation::Activation;
    use certnn_nn::layer::DenseLayer;

    /// f(x) = x (via relu(x) - relu(-x)): deviation equals the radius.
    fn identity_net() -> Network {
        let l1 = DenseLayer::new(
            Matrix::from_rows(&[&[1.0], &[-1.0]]).unwrap(),
            Vector::zeros(2),
            Activation::Relu,
        )
        .unwrap();
        let l2 = DenseLayer::new(
            Matrix::from_rows(&[&[1.0, -1.0]]).unwrap(),
            Vector::zeros(1),
            Activation::Identity,
        )
        .unwrap();
        Network::new(vec![l1, l2]).unwrap()
    }

    fn domain() -> InputSpec {
        InputSpec::from_box(vec![Interval::new(-2.0, 2.0)]).unwrap()
    }

    #[test]
    fn ball_spec_clips_to_domain() {
        let d = domain();
        let spec = ball_spec(&d, &Vector::from(vec![1.8]), 0.5).unwrap();
        assert_eq!(spec.bounds()[0], Interval::new(1.3, 2.0));
        assert!(ball_spec(&d, &Vector::zeros(2), 0.5).is_err());
    }

    #[test]
    fn identity_function_robust_iff_radius_below_delta() {
        let net = identity_net();
        let d = domain();
        let c = Vector::from(vec![0.0]);
        let obj = LinearObjective::output(0);
        let v = Verifier::new();
        // radius 0.3, delta 0.5 -> robust.
        let r = verify_robust(&v, &net, &d, &c, 0.3, &obj, 0.5).unwrap();
        assert!(r.is_robust());
        // radius 0.8, delta 0.5 -> fragile, with a genuine witness.
        let r = verify_robust(&v, &net, &d, &c, 0.8, &obj, 0.5).unwrap();
        match r {
            RobustnessVerdict::Fragile { witness, deviation } => {
                assert!(deviation.abs() > 0.5);
                assert!(witness[0].abs() <= 0.8 + 1e-6);
            }
            other => panic!("expected fragile, got {other:?}"),
        }
    }

    #[test]
    fn maximum_resilience_of_identity_equals_delta() {
        let net = identity_net();
        let d = domain();
        let c = Vector::from(vec![0.0]);
        let obj = LinearObjective::output(0);
        let v = Verifier::new();
        let res =
            maximum_resilience(&v, &net, &d, &c, &obj, 0.5, 1.5, 0.01).unwrap();
        // |f(x) - f(0)| = |x| <= delta iff epsilon <= 0.5.
        assert!(
            (res.robust_radius - 0.5).abs() < 0.02,
            "resilience {} should be ~0.5",
            res.robust_radius
        );
        assert!(res.fragile_radius.unwrap() > res.robust_radius);
        assert!(res.queries >= 3);
    }

    #[test]
    fn fully_robust_up_to_max_epsilon() {
        let net = identity_net();
        let d = domain();
        let c = Vector::from(vec![0.0]);
        let obj = LinearObjective::output(0);
        let v = Verifier::new();
        // delta 10 can never be exceeded on a [-2,2] domain.
        let res = maximum_resilience(&v, &net, &d, &c, &obj, 10.0, 1.0, 0.01).unwrap();
        assert_eq!(res.robust_radius, 1.0);
        assert_eq!(res.fragile_radius, None);
    }

    #[test]
    fn random_network_resilience_is_consistent() {
        let net = Network::relu_mlp(3, &[6, 6], 1, 77).unwrap();
        let d = InputSpec::from_box(vec![Interval::new(-1.0, 1.0); 3]).unwrap();
        let c = Vector::from(vec![0.1, -0.2, 0.3]);
        let obj = LinearObjective::output(0);
        let v = Verifier::new();
        let res = maximum_resilience(&v, &net, &d, &c, &obj, 0.25, 1.0, 0.02).unwrap();
        // The proven-robust radius must indeed be robust when re-checked.
        if res.robust_radius > 0.0 {
            let check = verify_robust(&v, &net, &d, &c, res.robust_radius, &obj, 0.25).unwrap();
            assert!(check.is_robust());
        }
        if let Some(f) = res.fragile_radius {
            let check = verify_robust(&v, &net, &d, &c, f, &obj, 0.25).unwrap();
            assert!(!check.is_robust());
        }
    }
}
