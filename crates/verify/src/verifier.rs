//! Verification queries: exact output maximisation and bound proofs.

use crate::bab::{bab_maximize_ckpt, BabOptions};
use crate::bounds::interval_objective_ceiling;
use crate::checkpoint::CheckpointPolicy;
use crate::encoder::{encode, BoundMethod, EncodingStats};
use crate::property::{InputSpec, LinearObjective};
use crate::VerifyError;
use certnn_linalg::Vector;
use certnn_milp::{BranchAndBound, Deadline, Degradation, MilpOptions, MilpStats, MilpStatus};
use certnn_nn::network::Network;
use std::time::Duration;

/// Statistics of one verification run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct VerifyStats {
    /// Branch-and-bound nodes explored.
    pub nodes: usize,
    /// Simplex pivots across all LP solves.
    pub lp_iterations: usize,
    /// Binary variables in the encoding (unstable neurons).
    pub binaries: usize,
    /// Constraint rows in the encoding.
    pub rows: usize,
    /// LP solves that reused a parent basis via the dual simplex.
    pub warm_solves: usize,
    /// LP solves started from scratch (first node per worker, or a warm
    /// attempt that fell back after basis invalidation).
    pub cold_solves: usize,
    /// Estimated pivots avoided by warm starts, measured against the
    /// running mean pivot count of the cold solves.
    pub pivots_saved: usize,
    /// Branch-and-bound nodes whose LP relaxation the α-bound skip gate
    /// elided (HybridBab only; `0` on the pure MILP path).
    pub lp_skipped: usize,
    /// Branch-and-bound nodes whose LP relaxation ran while the skip
    /// gate was active (HybridBab only).
    pub lp_forced: usize,
    /// Wall-clock time of the MILP solve.
    pub elapsed: Duration,
    /// Worst degradation encountered while answering the query:
    /// [`Degradation::Exact`] on a clean run, worse if the search recovered
    /// from numeric faults, worker panics or an expired deadline. The
    /// reported bounds stay sound at every level.
    pub degradation: Degradation,
}

impl VerifyStats {
    fn from_parts(
        stats: EncodingStats,
        nodes: usize,
        lp_iterations: usize,
        warm: MilpStats,
        elapsed: Duration,
        degradation: Degradation,
    ) -> Self {
        Self {
            nodes,
            lp_iterations,
            binaries: stats.binaries,
            rows: stats.rows,
            warm_solves: warm.warm_solves,
            cold_solves: warm.cold_solves,
            pivots_saved: warm.pivots_saved,
            lp_skipped: 0,
            lp_forced: 0,
            elapsed,
            degradation,
        }
    }
}

/// Result of a [`Verifier::maximize`] query.
#[derive(Debug, Clone, PartialEq)]
pub struct MaxResult {
    /// Termination status of the underlying MILP.
    pub status: MilpStatus,
    /// Proven upper bound on the maximum.
    pub upper_bound: f64,
    /// Best objective value achieved by a real input, if one was found.
    pub best_value: Option<f64>,
    /// An input achieving `best_value` (a genuine forward-pass witness).
    pub witness: Option<Vector>,
    /// Run statistics.
    pub stats: VerifyStats,
}

impl MaxResult {
    /// `true` if the maximum was computed exactly (bound meets witness).
    pub fn is_exact(&self) -> bool {
        self.status == MilpStatus::Optimal
    }

    /// The exact maximum if the query closed, else `None`.
    pub fn exact_max(&self) -> Option<f64> {
        self.is_exact().then_some(self.best_value).flatten()
    }
}

/// Result of a [`Verifier::minimize`] query.
#[derive(Debug, Clone, PartialEq)]
pub struct MinResult {
    /// Termination status of the underlying search.
    pub status: MilpStatus,
    /// Proven lower bound on the minimum.
    pub lower_bound: f64,
    /// Best (smallest) objective value achieved by a real input.
    pub best_value: Option<f64>,
    /// An input achieving `best_value`.
    pub witness: Option<Vector>,
    /// Run statistics.
    pub stats: VerifyStats,
}

impl MinResult {
    /// `true` if the minimum was computed exactly.
    pub fn is_exact(&self) -> bool {
        self.status == MilpStatus::Optimal
    }

    /// The exact minimum if the query closed, else `None`.
    pub fn exact_min(&self) -> Option<f64> {
        self.is_exact().then_some(self.best_value).flatten()
    }
}

/// Verdict of a [`Verifier::prove_below`] query.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// The property holds: the objective stays below the threshold on the
    /// whole input set.
    Holds {
        /// Proven upper bound on the objective (≤ threshold).
        bound: f64,
    },
    /// The property is violated and here is a concrete input proving it.
    Violated {
        /// The violating input.
        witness: Vector,
        /// Objective value at the witness (> threshold).
        value: f64,
    },
    /// Resource limits were hit before a decision.
    Unknown {
        /// Best objective value seen on a real input, if any.
        best_seen: Option<f64>,
        /// Best proven upper bound so far.
        upper_bound: f64,
    },
}

impl Verdict {
    /// `true` for [`Verdict::Holds`].
    pub fn holds(&self) -> bool {
        matches!(self, Verdict::Holds { .. })
    }
}

/// Search engine used to close verification queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Engine {
    /// Pick per query: [`Engine::HybridBab`] for high-dimensional inputs
    /// (≥ 32 features, e.g. the 84-feature scenario box where LP
    /// relaxations are weak and symbolic propagation shines),
    /// [`Engine::Milp`] for low-dimensional boxes where the joint LP
    /// relaxation is strong. The default.
    #[default]
    Auto,
    /// Neuron branch-and-bound with symbolic re-propagation and LP
    /// bounding per node, plus an exact sub-MILP for small residual
    /// subproblems. Requires a box-only specification; specs with linear
    /// constraints fall back to [`Engine::Milp`] automatically.
    HybridBab,
    /// The pure big-M MILP of Cheng et al. (ATVA 2017).
    Milp,
}

/// Configuration for [`Verifier`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VerifierOptions {
    /// Search engine.
    pub engine: Engine,
    /// Hand a BaB node to the exact sub-MILP once at most this many
    /// neurons remain unstable (HybridBab only).
    pub milp_threshold: usize,
    /// Bound-propagation presolve method.
    pub bound_method: BoundMethod,
    /// Wall-clock limit per query; `None` = unlimited.
    pub time_limit: Option<Duration>,
    /// Node limit per query; `None` = unlimited.
    pub node_limit: Option<usize>,
    /// Absolute optimality gap for `maximize`.
    pub abs_gap: f64,
    /// Search workers for the branch-and-bound engines: `1` keeps the
    /// deterministic serial visit order, `0` uses one worker per
    /// available core (see [`crate::bab::resolve_threads`]).
    pub threads: usize,
    /// Reuse parent LP bases across branch-and-bound nodes via the dual
    /// simplex (verdict-preserving; disable to benchmark the cold path).
    pub warm_start: bool,
    /// Coordinate-descent rounds of the α-optimized bounding layer, per
    /// node and in the MILP encoding presolve. `0` disables tuning and
    /// reproduces the fixed-slope heuristic bit-for-bit (see
    /// [`crate::bab::BabOptions::alpha_iters`]).
    pub alpha_iters: usize,
    /// Elide per-node LP relaxations where they are redundant (sub-MILP
    /// hand-off nodes) or configured as skippable (near-prune margin;
    /// HybridBab only; see [`crate::bab::BabOptions::lp_skip`]).
    pub lp_skip: bool,
}

impl Default for VerifierOptions {
    fn default() -> Self {
        Self {
            engine: Engine::Auto,
            milp_threshold: 8,
            bound_method: BoundMethod::Symbolic,
            time_limit: None,
            node_limit: None,
            abs_gap: 1e-6,
            threads: 1,
            warm_start: true,
            alpha_iters: crate::bab::DEFAULT_ALPHA_ITERS,
            lp_skip: true,
        }
    }
}

/// MILP-based neural-network verifier (the paper's Table II engine).
///
/// See the [crate-level documentation](crate) for an example.
#[derive(Debug, Clone, Default)]
pub struct Verifier {
    opts: VerifierOptions,
    deadline: Deadline,
    checkpoints: Option<CheckpointPolicy>,
}

impl Verifier {
    /// Creates a verifier with default options (symbolic presolve, no
    /// resource limits).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a verifier with explicit options.
    pub fn with_options(opts: VerifierOptions) -> Self {
        Self {
            opts,
            deadline: Deadline::none(),
            checkpoints: None,
        }
    }

    /// Attaches an ambient [`Deadline`]/cancellation token. Every query
    /// observes it (tightened by [`VerifierOptions::time_limit`]) down to
    /// individual simplex pivot batches; expiry yields a sound partial
    /// answer tagged [`Degradation::TimedOut`] rather than an error.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = deadline;
        self
    }

    /// Attaches a crash-safe checkpoint policy. Branch-and-bound queries
    /// snapshot their live frontier to `policy.dir` on the configured
    /// cadence and flush a final snapshot when a resource limit stops the
    /// search, so an interrupted query can be resumed (with
    /// `policy.resume`) and finish as if it had never been stopped. The
    /// pure-MILP engine ignores the policy — only the hybrid
    /// branch-and-bound path is resumable.
    #[must_use]
    pub fn with_checkpoints(mut self, policy: CheckpointPolicy) -> Self {
        self.checkpoints = Some(policy);
        self
    }

    fn milp_options(&self) -> MilpOptions {
        MilpOptions {
            time_limit: self.opts.time_limit,
            node_limit: self.opts.node_limit,
            abs_gap: self.opts.abs_gap,
            warm_start: self.opts.warm_start,
            ..MilpOptions::default()
        }
    }

    fn bab_options(&self) -> BabOptions {
        BabOptions {
            time_limit: self.opts.time_limit,
            node_limit: self.opts.node_limit,
            abs_gap: self.opts.abs_gap,
            milp_threshold: self.opts.milp_threshold,
            target_objective: None,
            bound_cutoff: None,
            lp_bounding: true,
            threads: self.opts.threads,
            warm_start: self.opts.warm_start,
            alpha_iters: self.opts.alpha_iters,
            lp_skip: self.opts.lp_skip,
            lp_skip_margin: crate::bab::DEFAULT_LP_SKIP_MARGIN,
        }
    }

    /// Presolve method for the pure-MILP paths: an explicitly requested
    /// method is honoured; the default [`BoundMethod::Symbolic`] is
    /// upgraded to [`BoundMethod::AlphaOptimized`] when α tuning is on,
    /// so the encoding gets the same stably-fixed neurons and big-M
    /// constants as the hybrid engine.
    fn effective_bound_method(&self) -> BoundMethod {
        match self.opts.bound_method {
            BoundMethod::Symbolic if self.opts.alpha_iters > 0 => BoundMethod::AlphaOptimized {
                iters: self.opts.alpha_iters,
            },
            other => other,
        }
    }

    fn use_bab(&self, spec: &InputSpec) -> bool {
        if !spec.constraints().is_empty() {
            return false;
        }
        match self.opts.engine {
            Engine::HybridBab => true,
            Engine::Milp => false,
            Engine::Auto => spec.num_inputs() >= 32,
        }
    }

    /// Computes (or bounds) `max f(out(x))` over `spec` (Table II rows 1–6:
    /// "maximum lateral velocity, when exists a vehicle in the left").
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError`] on malformed inputs, or
    /// [`VerifyError::CounterexampleMismatch`] if the internal soundness
    /// check fails (which would indicate an encoder bug).
    pub fn maximize(
        &self,
        net: &Network,
        spec: &InputSpec,
        objective: &LinearObjective,
    ) -> Result<MaxResult, VerifyError> {
        objective.check_against(net)?;
        if self.use_bab(spec) {
            let r = bab_maximize_ckpt(
                net,
                spec,
                objective,
                &self.bab_options(),
                self.deadline.clone(),
                self.checkpoints.as_ref(),
            )?;
            return Ok(MaxResult {
                status: r.status,
                upper_bound: r.upper_bound,
                best_value: r.best_value,
                witness: r.witness,
                stats: VerifyStats {
                    nodes: r.nodes,
                    lp_iterations: r.lp_iterations,
                    binaries: r.encoding_stats.binaries,
                    rows: r.encoding_stats.rows,
                    warm_solves: r.warm_stats.warm_solves,
                    cold_solves: r.warm_stats.cold_solves,
                    pivots_saved: r.warm_stats.pivots_saved,
                    lp_skipped: r.lp_skipped,
                    lp_forced: r.lp_forced,
                    elapsed: r.elapsed,
                    degradation: r.degradation,
                },
            });
        }
        let enc = encode(net, spec, self.effective_bound_method())?;
        let mut milp = enc.milp.clone();
        let terms: Vec<_> = objective
            .terms
            .iter()
            .map(|&(o, c)| (enc.output_vars[o], c))
            .collect();
        milp.set_objective(&terms);
        let solver = BranchAndBound::with_options(self.milp_options())
            .with_deadline(self.deadline.clone());
        let sol = solver.solve(&milp).map_err(VerifyError::from)?;

        let (witness, best_value) = match (&sol.x, sol.objective) {
            (Some(x), Some(claimed)) => {
                let input: Vector = enc.input_vars.iter().map(|v| x[v.index()]).collect();
                let real_out = net.forward(&input)?;
                let recomputed = objective.eval(&real_out);
                if (recomputed - (claimed + objective.constant)).abs() > 1e-4 {
                    return Err(VerifyError::CounterexampleMismatch {
                        claimed: claimed + objective.constant,
                        recomputed,
                    });
                }
                (Some(input), Some(recomputed))
            }
            _ => (None, None),
        };
        // Same ladder contract as the bab engine: a bound the solver had
        // to abandon is clamped by plain interval arithmetic, the loosest
        // sound answer. Exact solves sit below the ceiling already.
        let ceiling = interval_objective_ceiling(net, spec.bounds(), objective)?;
        Ok(MaxResult {
            status: sol.status,
            upper_bound: (sol.best_bound + objective.constant).min(ceiling),
            best_value,
            witness,
            stats: VerifyStats::from_parts(
                enc.stats,
                sol.nodes,
                sol.lp_iterations,
                sol.stats,
                sol.elapsed,
                sol.degradation,
            ),
        })
    }

    /// Computes (or bounds) `min f(out(x))` over `spec` — the mirror of
    /// [`Verifier::maximize`], implemented by maximising the negated
    /// functional.
    ///
    /// # Errors
    ///
    /// Same as [`Verifier::maximize`].
    pub fn minimize(
        &self,
        net: &Network,
        spec: &InputSpec,
        objective: &LinearObjective,
    ) -> Result<MinResult, VerifyError> {
        let negated = LinearObjective {
            terms: objective.terms.iter().map(|&(i, c)| (i, -c)).collect(),
            constant: -objective.constant,
        };
        let r = self.maximize(net, spec, &negated)?;
        Ok(MinResult {
            status: r.status,
            lower_bound: -r.upper_bound,
            best_value: r.best_value.map(|v| -v),
            witness: r.witness,
            stats: r.stats,
        })
    }

    /// Decides `∀x ∈ spec. f(out(x)) ≤ threshold` (Table II last row:
    /// "prove that the lateral velocity can never be larger than 3 m/s").
    ///
    /// Uses both early-termination paths of the branch-and-bound: the
    /// query stops as soon as *either* a violating input is found *or* the
    /// global bound drops below the threshold — usually far cheaper than
    /// computing the exact maximum.
    ///
    /// # Errors
    ///
    /// Same as [`Verifier::maximize`].
    pub fn prove_below(
        &self,
        net: &Network,
        spec: &InputSpec,
        objective: &LinearObjective,
        threshold: f64,
    ) -> Result<(Verdict, VerifyStats), VerifyError> {
        objective.check_against(net)?;
        if self.use_bab(spec) {
            let mut opts = self.bab_options();
            opts.target_objective = Some(threshold + 1e-9);
            opts.bound_cutoff = Some(threshold);
            let r = bab_maximize_ckpt(
                net,
                spec,
                objective,
                &opts,
                self.deadline.clone(),
                self.checkpoints.as_ref(),
            )?;
            let stats = VerifyStats {
                nodes: r.nodes,
                lp_iterations: r.lp_iterations,
                binaries: r.encoding_stats.binaries,
                rows: r.encoding_stats.rows,
                warm_solves: r.warm_stats.warm_solves,
                cold_solves: r.warm_stats.cold_solves,
                pivots_saved: r.warm_stats.pivots_saved,
                lp_skipped: r.lp_skipped,
                lp_forced: r.lp_forced,
                elapsed: r.elapsed,
                degradation: r.degradation,
            };
            let verdict = match r.status {
                MilpStatus::BoundCutoff => Verdict::Holds {
                    bound: r.upper_bound,
                },
                MilpStatus::TargetReached => Verdict::Violated {
                    witness: r.witness.expect("target needs witness"),
                    value: r.best_value.expect("target needs value"),
                },
                MilpStatus::Optimal | MilpStatus::Infeasible => {
                    match (r.witness, r.best_value) {
                        (Some(witness), Some(value)) if value > threshold => {
                            Verdict::Violated { witness, value }
                        }
                        _ => Verdict::Holds {
                            bound: r.upper_bound,
                        },
                    }
                }
                _ => Verdict::Unknown {
                    best_seen: r.best_value,
                    upper_bound: r.upper_bound,
                },
            };
            return Ok((verdict, stats));
        }
        let enc = encode(net, spec, self.effective_bound_method())?;
        let mut milp = enc.milp.clone();
        let terms: Vec<_> = objective
            .terms
            .iter()
            .map(|&(o, c)| (enc.output_vars[o], c))
            .collect();
        milp.set_objective(&terms);
        let mut opts = self.milp_options();
        // MILP objective excludes the affine constant; shift the thresholds.
        let t = threshold - objective.constant;
        opts.target_objective = Some(t + 1e-9);
        opts.bound_cutoff = Some(t);
        let solver = BranchAndBound::with_options(opts).with_deadline(self.deadline.clone());
        let sol = solver.solve(&milp).map_err(VerifyError::from)?;
        let stats = VerifyStats::from_parts(
            enc.stats,
            sol.nodes,
            sol.lp_iterations,
            sol.stats,
            sol.elapsed,
            sol.degradation,
        );

        let witness_value = match (&sol.x, sol.objective) {
            (Some(x), Some(claimed)) => {
                let input: Vector = enc.input_vars.iter().map(|v| x[v.index()]).collect();
                let real_out = net.forward(&input)?;
                let recomputed = objective.eval(&real_out);
                if (recomputed - (claimed + objective.constant)).abs() > 1e-4 {
                    return Err(VerifyError::CounterexampleMismatch {
                        claimed: claimed + objective.constant,
                        recomputed,
                    });
                }
                Some((input, recomputed))
            }
            _ => None,
        };

        let upper = sol.best_bound + objective.constant;
        let verdict = match sol.status {
            MilpStatus::BoundCutoff => Verdict::Holds { bound: upper },
            MilpStatus::TargetReached => {
                let (witness, value) = witness_value.expect("target needs incumbent");
                Verdict::Violated { witness, value }
            }
            MilpStatus::Optimal | MilpStatus::Infeasible => {
                // Gap closed (or the scenario set is empty, in which case
                // the property holds vacuously).
                match witness_value {
                    Some((witness, value)) if value > threshold => {
                        Verdict::Violated { witness, value }
                    }
                    _ => Verdict::Holds {
                        bound: if sol.status == MilpStatus::Infeasible {
                            f64::NEG_INFINITY
                        } else {
                            upper
                        },
                    },
                }
            }
            MilpStatus::TimeLimit
            | MilpStatus::NodeLimit
            | MilpStatus::Unbounded
            | MilpStatus::Aborted => Verdict::Unknown {
                best_seen: witness_value.map(|(_, v)| v),
                upper_bound: upper,
            },
        };
        Ok((verdict, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certnn_linalg::Interval;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn unit_spec(n: usize) -> InputSpec {
        InputSpec::from_box(vec![Interval::new(-1.0, 1.0); n]).unwrap()
    }

    #[test]
    fn exact_max_dominates_random_sampling() {
        let net = Network::relu_mlp(3, &[8, 8], 2, 5).unwrap();
        let spec = unit_spec(3);
        let obj = LinearObjective::output(0);
        let result = Verifier::new().maximize(&net, &spec, &obj).unwrap();
        assert!(result.is_exact());
        let max = result.exact_max().unwrap();
        // Dense random sampling can approach but never exceed the max.
        let mut rng = StdRng::seed_from_u64(0);
        let mut best = f64::NEG_INFINITY;
        for _ in 0..3000 {
            let x: Vector = (0..3).map(|_| rng.gen_range(-1.0..=1.0)).collect();
            best = best.max(net.forward(&x).unwrap()[0]);
        }
        assert!(max >= best - 1e-6, "milp {max} < sampled {best}");
        // The witness achieves the claimed value (checked internally too).
        let w = result.witness.unwrap();
        assert!(spec.contains(&w, 1e-6));
        assert!((net.forward(&w).unwrap()[0] - max).abs() < 1e-6);
    }

    #[test]
    fn interval_and_symbolic_presolve_agree_on_the_optimum() {
        let net = Network::relu_mlp(3, &[6, 6], 1, 9).unwrap();
        let spec = unit_spec(3);
        let obj = LinearObjective::output(0);
        let a = Verifier::with_options(VerifierOptions {
            bound_method: BoundMethod::Interval,
            ..VerifierOptions::default()
        })
        .maximize(&net, &spec, &obj)
        .unwrap();
        let b = Verifier::with_options(VerifierOptions {
            bound_method: BoundMethod::Symbolic,
            ..VerifierOptions::default()
        })
        .maximize(&net, &spec, &obj)
        .unwrap();
        assert!(a.is_exact() && b.is_exact());
        assert!(
            (a.exact_max().unwrap() - b.exact_max().unwrap()).abs() < 1e-5,
            "interval {:?} vs symbolic {:?}",
            a.exact_max(),
            b.exact_max()
        );
    }

    #[test]
    fn fixed_scenario_features_are_respected_by_witness() {
        let net = Network::relu_mlp(4, &[6], 1, 11).unwrap();
        let spec = unit_spec(4).fix(1, 1.0).restrict(2, 0.0, 0.25);
        let obj = LinearObjective::output(0);
        let result = Verifier::new().maximize(&net, &spec, &obj).unwrap();
        let w = result.witness.unwrap();
        assert!((w[1] - 1.0).abs() < 1e-6);
        assert!(w[2] >= -1e-9 && w[2] <= 0.25 + 1e-9);
    }

    #[test]
    fn prove_below_holds_for_generous_threshold() {
        let net = Network::relu_mlp(3, &[6, 6], 1, 13).unwrap();
        let spec = unit_spec(3);
        let obj = LinearObjective::output(0);
        let max = Verifier::new()
            .maximize(&net, &spec, &obj)
            .unwrap()
            .exact_max()
            .unwrap();
        let (verdict, _) = Verifier::new()
            .prove_below(&net, &spec, &obj, max + 1.0)
            .unwrap();
        match verdict {
            Verdict::Holds { bound } => assert!(bound <= max + 1.0 + 1e-6),
            other => panic!("expected Holds, got {other:?}"),
        }
    }

    #[test]
    fn prove_below_finds_violation_for_tight_threshold() {
        let net = Network::relu_mlp(3, &[6, 6], 1, 13).unwrap();
        let spec = unit_spec(3);
        let obj = LinearObjective::output(0);
        let max = Verifier::new()
            .maximize(&net, &spec, &obj)
            .unwrap()
            .exact_max()
            .unwrap();
        let (verdict, _) = Verifier::new()
            .prove_below(&net, &spec, &obj, max - 0.1)
            .unwrap();
        match verdict {
            Verdict::Violated { witness, value } => {
                assert!(value > max - 0.1);
                assert!((net.forward(&witness).unwrap()[0] - value).abs() < 1e-6);
                assert!(spec.contains(&witness, 1e-6));
            }
            other => panic!("expected Violated, got {other:?}"),
        }
    }

    #[test]
    fn node_limit_yields_unknown_or_decision() {
        let net = Network::relu_mlp(6, &[12, 12], 1, 21).unwrap();
        let spec = unit_spec(6);
        let obj = LinearObjective::output(0);
        let v = Verifier::with_options(VerifierOptions {
            node_limit: Some(1),
            ..VerifierOptions::default()
        });
        // With one node the query usually cannot close unless presolve
        // already decides it; accept any verdict but require consistency.
        let max_ref = Verifier::new()
            .maximize(&net, &spec, &obj)
            .unwrap()
            .exact_max()
            .unwrap();
        let (verdict, _) = v.prove_below(&net, &spec, &obj, max_ref - 0.05).unwrap();
        match verdict {
            Verdict::Holds { .. } => panic!("threshold below max cannot hold"),
            Verdict::Violated { value, .. } => assert!(value > max_ref - 0.05),
            Verdict::Unknown { upper_bound, .. } => {
                assert!(upper_bound >= max_ref - 1e-6);
            }
        }
    }

    #[test]
    fn objective_combination_and_constant() {
        let net = Network::relu_mlp(2, &[4], 2, 2).unwrap();
        let spec = unit_spec(2);
        let obj = LinearObjective {
            terms: vec![(0, 1.0), (1, -1.0)],
            constant: 10.0,
        };
        let result = Verifier::new().maximize(&net, &spec, &obj).unwrap();
        let max = result.exact_max().unwrap();
        // Constant must be included in both value and bound.
        assert!(max > 5.0, "constant missing: {max}");
        assert!(result.upper_bound >= max - 1e-6);
    }

    #[test]
    fn minimize_mirrors_maximize() {
        let net = Network::relu_mlp(3, &[6, 6], 1, 13).unwrap();
        let spec = unit_spec(3);
        let obj = LinearObjective::output(0);
        let min = Verifier::new().minimize(&net, &spec, &obj).unwrap();
        assert!(min.is_exact());
        let lo = min.exact_min().unwrap();
        let hi = Verifier::new()
            .maximize(&net, &spec, &obj)
            .unwrap()
            .exact_max()
            .unwrap();
        assert!(lo <= hi);
        // The witness achieves the minimum through a real forward pass.
        let w = min.witness.unwrap();
        assert!((net.forward(&w).unwrap()[0] - lo).abs() < 1e-6);
        // And sampling never goes below it.
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..500 {
            let x: Vector = (0..3).map(|_| rng.gen_range(-1.0..=1.0)).collect();
            assert!(net.forward(&x).unwrap()[0] >= lo - 1e-6);
        }
    }

    #[test]
    fn invalid_objective_rejected() {
        let net = Network::relu_mlp(2, &[4], 1, 2).unwrap();
        let spec = unit_spec(2);
        let obj = LinearObjective::output(5);
        assert!(Verifier::new().maximize(&net, &spec, &obj).is_err());
    }

    #[test]
    fn stats_reflect_problem_size() {
        let net = Network::relu_mlp(3, &[10, 10], 1, 31).unwrap();
        let spec = unit_spec(3);
        let obj = LinearObjective::output(0);
        let result = Verifier::new().maximize(&net, &spec, &obj).unwrap();
        assert!(result.stats.rows > 0);
        assert!(result.stats.nodes >= 1);
        assert!(result.stats.binaries <= 20);
    }
}
