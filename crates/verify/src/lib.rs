//! Formal verification of ReLU networks via MILP (the paper's Sec. II (B)
//! "from testing to formal analysis").
//!
//! The methodology follows Cheng, Nührenberg & Ruess, *Maximum Resilience
//! of Artificial Neural Networks* (ATVA 2017), which the paper applies in
//! its case study: the piecewise-linear network is encoded exactly as a
//! set of mixed-integer linear constraints, and safety questions become
//! MILP queries.
//!
//! # Architecture
//!
//! 1. [`bounds`] — sound per-neuron pre-activation bounds: fast interval
//!    propagation ([`bounds::interval_bounds`]), the tighter DeepPoly/
//!    CROWN-style symbolic relaxation ([`bounds::symbolic_bounds`]), and
//!    the phase-aware variant ([`bounds::analyze_with_phases`]) that
//!    re-propagates under partial ReLU phase assignments. Tight bounds
//!    shrink big-M constants and let *stable* neurons be encoded without
//!    a binary variable.
//! 2. [`encoder`] — the big-M MILP encoding over a [`property::InputSpec`]
//!    (box + linear scenario constraints such as *a vehicle is abreast on
//!    the left*).
//! 3. [`bab`] — the hybrid neuron branch-and-bound: gradient-guided phase
//!    branching, symbolic + LP bounding per node, genuine incumbents from
//!    every node's bounding corner, and an exact sub-MILP once few
//!    neurons remain unstable. The search is work-sharing parallel
//!    ([`bab::BabOptions::threads`]); any thread count returns the same
//!    verdict within the `abs_gap` contract.
//! 4. [`verifier`] — the two query forms of Table II behind one facade:
//!    [`verifier::Verifier::maximize`] / [`verifier::Verifier::minimize`]
//!    compute exact extrema of linear output functionals (rows 1–6), and
//!    [`verifier::Verifier::prove_below`] decides a bound with early
//!    termination in both directions (last row). The engine —
//!    [`verifier::Engine::Milp`] (the paper's method) or
//!    [`verifier::Engine::HybridBab`] — is selected automatically per
//!    query.
//! 5. [`attack`] — cheap gradient falsification to run *before* complete
//!    verification; [`robustness`] — local robustness and the
//!    maximum-resilience search of the cited ATVA 2017 methodology;
//!    [`range`] — verified output ranges; [`quant`] — post-training
//!    quantization (the paper's Sec. IV (ii)), verified through the same
//!    encodings.
//!
//! # Example
//!
//! ```
//! use certnn_nn::network::Network;
//! use certnn_verify::property::{InputSpec, LinearObjective};
//! use certnn_verify::verifier::Verifier;
//! use certnn_linalg::Interval;
//!
//! # fn main() -> Result<(), certnn_verify::VerifyError> {
//! let net = Network::relu_mlp(2, &[4], 1, 0)?;
//! let spec = InputSpec::from_box(vec![Interval::new(-1.0, 1.0); 2])?;
//! let objective = LinearObjective::output(0);
//! let result = Verifier::new().maximize(&net, &spec, &objective)?;
//! assert!(result.is_exact());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

pub mod attack;
pub mod bab;
pub mod bounds;
pub mod checkpoint;
pub mod encoder;
pub mod property;
pub mod quant;
pub mod range;
pub mod robustness;
pub mod verifier;

pub use certnn_lp::{Deadline, Degradation};
// The solver status appears on this crate's own public API
// (`MaxResult::status`); re-export it so downstream crates (the serve
// daemon) can name it without depending on certnn-milp directly.
pub use certnn_milp::MilpStatus;

use certnn_milp::MilpError;
use certnn_nn::NnError;
use std::error::Error;
use std::fmt;

/// Error raised during verification.
#[derive(Debug, Clone, PartialEq)]
pub enum VerifyError {
    /// The network is malformed or does not match the specification.
    Network(NnError),
    /// The underlying MILP solve failed structurally.
    Milp(MilpError),
    /// The input specification does not match the network's input width.
    SpecMismatch {
        /// Network input width.
        network_inputs: usize,
        /// Specification width.
        spec_inputs: usize,
    },
    /// The network contains an activation the MILP encoding cannot express
    /// exactly (e.g. `tanh`).
    NotPiecewiseLinear {
        /// Index of the offending layer.
        layer: usize,
    },
    /// An internal soundness check failed (encoded optimum does not match a
    /// real forward pass). This indicates a bug, never a property result.
    CounterexampleMismatch {
        /// Objective value claimed by the MILP.
        claimed: f64,
        /// Objective value recomputed by a forward pass.
        recomputed: f64,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Network(e) => write!(f, "network error: {e}"),
            VerifyError::Milp(e) => write!(f, "milp error: {e}"),
            VerifyError::SpecMismatch {
                network_inputs,
                spec_inputs,
            } => write!(
                f,
                "specification has {spec_inputs} inputs but network expects {network_inputs}"
            ),
            VerifyError::NotPiecewiseLinear { layer } => {
                write!(f, "layer {layer} is not piecewise linear; MILP encoding is exact only for relu/identity")
            }
            VerifyError::CounterexampleMismatch { claimed, recomputed } => write!(
                f,
                "internal soundness check failed: milp claims {claimed}, forward pass gives {recomputed}"
            ),
        }
    }
}

impl Error for VerifyError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            VerifyError::Network(e) => Some(e),
            VerifyError::Milp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for VerifyError {
    fn from(e: NnError) -> Self {
        VerifyError::Network(e)
    }
}

impl From<MilpError> for VerifyError {
    fn from(e: MilpError) -> Self {
        VerifyError::Milp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_source() {
        let e = VerifyError::from(NnError::EmptyArchitecture);
        assert!(e.to_string().contains("network error"));
        assert!(std::error::Error::source(&e).is_some());
        let e2 = VerifyError::SpecMismatch {
            network_inputs: 84,
            spec_inputs: 2,
        };
        assert!(e2.to_string().contains("84"));
    }
}
