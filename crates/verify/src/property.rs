//! Input specifications and output objectives.
//!
//! A verification query is `max f(out(x))  s.t.  x ∈ P` where `P` is an
//! [`InputSpec`] — the feature box optionally intersected with linear
//! scenario constraints — and `f` a [`LinearObjective`] over the network
//! outputs. The paper's Table II property instantiates `P` with "a vehicle
//! exists abreast on the left" and `f` with a lateral-velocity mean output.

use crate::VerifyError;
use certnn_linalg::{Interval, Vector};
use certnn_nn::network::Network;

/// Relation of a linear scenario constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relation {
    /// `Σ coef·x ≤ rhs`
    Le,
    /// `Σ coef·x = rhs`
    Eq,
    /// `Σ coef·x ≥ rhs`
    Ge,
}

/// One linear constraint over the input features.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearConstraint {
    /// Sparse `(feature index, coefficient)` terms.
    pub terms: Vec<(usize, f64)>,
    /// Relation.
    pub relation: Relation,
    /// Right-hand side.
    pub rhs: f64,
}

impl LinearConstraint {
    /// `true` if `x` satisfies the constraint within `tol`.
    ///
    /// # Panics
    ///
    /// Panics if a term index is out of range for `x`.
    pub fn satisfied_by(&self, x: &Vector, tol: f64) -> bool {
        let lhs: f64 = self.terms.iter().map(|&(i, c)| c * x[i]).sum();
        match self.relation {
            Relation::Le => lhs <= self.rhs + tol,
            Relation::Ge => lhs >= self.rhs - tol,
            Relation::Eq => (lhs - self.rhs).abs() <= tol,
        }
    }
}

/// The admissible input set of a query: a box plus linear constraints.
#[derive(Debug, Clone, PartialEq)]
pub struct InputSpec {
    bounds: Vec<Interval>,
    constraints: Vec<LinearConstraint>,
}

impl InputSpec {
    /// A pure box specification.
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError::SpecMismatch`] if the box is empty (zero
    /// inputs are meaningless).
    pub fn from_box(bounds: Vec<Interval>) -> Result<Self, VerifyError> {
        if bounds.is_empty() {
            return Err(VerifyError::SpecMismatch {
                network_inputs: 0,
                spec_inputs: 0,
            });
        }
        Ok(Self {
            bounds,
            constraints: Vec::new(),
        })
    }

    /// The per-feature bounds.
    pub fn bounds(&self) -> &[Interval] {
        &self.bounds
    }

    /// The linear constraints.
    pub fn constraints(&self) -> &[LinearConstraint] {
        &self.constraints
    }

    /// Number of input features.
    pub fn num_inputs(&self) -> usize {
        self.bounds.len()
    }

    /// Pins feature `index` to the exact value `v` (a degenerate interval).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn fix(mut self, index: usize, v: f64) -> Self {
        assert!(index < self.bounds.len(), "feature index out of range");
        self.bounds[index] = Interval::point(v);
        self
    }

    /// Restricts feature `index` to `[lo, hi]` (intersected with the
    /// current bound).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range or the intersection is empty.
    pub fn restrict(mut self, index: usize, lo: f64, hi: f64) -> Self {
        assert!(index < self.bounds.len(), "feature index out of range");
        let cur = self.bounds[index];
        self.bounds[index] = cur
            .intersect(&Interval::new(lo, hi))
            .expect("restriction must intersect the current bound");
        self
    }

    /// Adds a linear scenario constraint.
    pub fn constrain(mut self, constraint: LinearConstraint) -> Self {
        self.constraints.push(constraint);
        self
    }

    /// `true` if `x` lies in the box and satisfies all constraints.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the spec width.
    pub fn contains(&self, x: &Vector, tol: f64) -> bool {
        assert_eq!(x.len(), self.bounds.len(), "dimension mismatch");
        self.bounds
            .iter()
            .zip(x.iter())
            .all(|(iv, &v)| iv.widened(tol).contains(v))
            && self.constraints.iter().all(|c| c.satisfied_by(x, tol))
    }
}

/// A linear functional over the network outputs:
/// `f(out) = Σ coef·out[i] + constant`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearObjective {
    /// Sparse `(output index, coefficient)` terms.
    pub terms: Vec<(usize, f64)>,
    /// Constant offset.
    pub constant: f64,
}

impl LinearObjective {
    /// The functional selecting a single output neuron.
    pub fn output(index: usize) -> Self {
        Self {
            terms: vec![(index, 1.0)],
            constant: 0.0,
        }
    }

    /// A weighted combination of outputs.
    pub fn combination(terms: Vec<(usize, f64)>) -> Self {
        Self {
            terms,
            constant: 0.0,
        }
    }

    /// Evaluates the functional on a network output vector.
    ///
    /// # Panics
    ///
    /// Panics if a term index is out of range.
    pub fn eval(&self, output: &Vector) -> f64 {
        self.constant + self.terms.iter().map(|&(i, c)| c * output[i]).sum::<f64>()
    }

    /// Largest referenced output index, or `None` if constant.
    pub fn max_output_index(&self) -> Option<usize> {
        self.terms.iter().map(|&(i, _)| i).max()
    }

    /// Validates the objective against a network's output width.
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError::SpecMismatch`] if an index is out of range.
    pub fn check_against(&self, net: &Network) -> Result<(), VerifyError> {
        if let Some(max) = self.max_output_index() {
            if max >= net.outputs() {
                return Err(VerifyError::SpecMismatch {
                    network_inputs: net.outputs(),
                    spec_inputs: max + 1,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec2() -> InputSpec {
        InputSpec::from_box(vec![Interval::new(-1.0, 1.0), Interval::new(0.0, 2.0)]).unwrap()
    }

    #[test]
    fn box_membership() {
        let s = spec2();
        assert!(s.contains(&Vector::from(vec![0.0, 1.0]), 1e-9));
        assert!(!s.contains(&Vector::from(vec![2.0, 1.0]), 1e-9));
    }

    #[test]
    fn fix_and_restrict() {
        let s = spec2().fix(0, 0.5).restrict(1, 1.0, 3.0);
        assert_eq!(s.bounds()[0], Interval::point(0.5));
        assert_eq!(s.bounds()[1], Interval::new(1.0, 2.0)); // intersected
        assert!(!s.contains(&Vector::from(vec![0.4, 1.5]), 1e-9));
        assert!(s.contains(&Vector::from(vec![0.5, 1.5]), 1e-9));
    }

    #[test]
    #[should_panic(expected = "must intersect")]
    fn empty_restriction_panics() {
        let _ = spec2().restrict(1, 5.0, 6.0);
    }

    #[test]
    fn linear_constraints_checked() {
        let s = spec2().constrain(LinearConstraint {
            terms: vec![(0, 1.0), (1, 1.0)],
            relation: Relation::Le,
            rhs: 1.0,
        });
        assert!(s.contains(&Vector::from(vec![0.0, 1.0]), 1e-9));
        assert!(!s.contains(&Vector::from(vec![1.0, 1.0]), 1e-9));
    }

    #[test]
    fn constraint_relations() {
        let x = Vector::from(vec![2.0]);
        let mk = |relation, rhs| LinearConstraint {
            terms: vec![(0, 1.0)],
            relation,
            rhs,
        };
        assert!(mk(Relation::Le, 2.0).satisfied_by(&x, 0.0));
        assert!(mk(Relation::Ge, 2.0).satisfied_by(&x, 0.0));
        assert!(mk(Relation::Eq, 2.0).satisfied_by(&x, 0.0));
        assert!(!mk(Relation::Eq, 1.0).satisfied_by(&x, 1e-9));
    }

    #[test]
    fn objective_evaluation() {
        let obj = LinearObjective::combination(vec![(0, 2.0), (2, -1.0)]);
        let out = Vector::from(vec![1.0, 9.0, 3.0]);
        assert_eq!(obj.eval(&out), -1.0);
        assert_eq!(obj.max_output_index(), Some(2));
        assert_eq!(LinearObjective::output(1).eval(&out), 9.0);
    }

    #[test]
    fn objective_validation_against_network() {
        let net = Network::relu_mlp(2, &[3], 2, 0).unwrap();
        assert!(LinearObjective::output(1).check_against(&net).is_ok());
        assert!(LinearObjective::output(2).check_against(&net).is_err());
    }

    #[test]
    fn empty_box_rejected() {
        assert!(InputSpec::from_box(vec![]).is_err());
    }
}
