//! Post-training weight quantization (paper Sec. IV (ii)).
//!
//! The paper's concluding remarks point to quantized neural networks as a
//! route to more scalable verification. This module implements symmetric
//! per-layer post-training quantization: weights and biases are rounded to
//! a signed `bits`-wide integer grid and de-quantized back to `f64`, so
//! the resulting [`Network`] runs through the exact same MILP pipeline.
//! The `quantized_verify` bench compares verification time and verified
//! bounds across bit widths.

use certnn_nn::layer::DenseLayer;
use certnn_nn::network::Network;
use certnn_nn::NnError;

/// Result of quantizing a network.
#[derive(Debug, Clone)]
pub struct QuantizedNetwork {
    /// The de-quantized network (weights on the integer grid × scale).
    pub network: Network,
    /// Bit width used.
    pub bits: u8,
    /// Per-layer weight scales (grid step).
    pub weight_scales: Vec<f64>,
    /// Largest absolute weight/bias perturbation introduced.
    pub max_error: f64,
}

/// Quantizes every layer of `net` to signed `bits`-bit weights.
///
/// # Errors
///
/// Returns [`NnError::EmptyArchitecture`] if `bits < 2` (a 1-bit signed
/// grid cannot represent magnitudes).
pub fn quantize(net: &Network, bits: u8) -> Result<QuantizedNetwork, NnError> {
    if bits < 2 {
        return Err(NnError::EmptyArchitecture);
    }
    let qmax = ((1i64 << (bits - 1)) - 1) as f64;
    let mut layers = Vec::with_capacity(net.layers().len());
    let mut scales = Vec::with_capacity(net.layers().len());
    let mut max_error: f64 = 0.0;
    for layer in net.layers() {
        let amax = layer
            .weights()
            .as_slice()
            .iter()
            .chain(layer.bias().as_slice())
            .fold(0.0f64, |m, v| m.max(v.abs()));
        let scale = if amax == 0.0 { 1.0 } else { amax / qmax };
        let q = |v: f64| (v / scale).round().clamp(-qmax - 1.0, qmax) * scale;
        let w = layer.weights().map(|v| {
            let qv = q(v);
            max_error = max_error.max((qv - v).abs());
            qv
        });
        let b = layer.bias().map(|v| {
            let qv = q(v);
            max_error = max_error.max((qv - v).abs());
            qv
        });
        layers.push(DenseLayer::new(w, b, layer.activation())?);
        scales.push(scale);
    }
    Ok(QuantizedNetwork {
        network: Network::new(layers)?,
        bits,
        weight_scales: scales,
        max_error,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use certnn_linalg::Vector;

    #[test]
    fn quantization_error_bounded_by_half_step() {
        let net = Network::relu_mlp(4, &[8, 8], 2, 3).unwrap();
        let q = quantize(&net, 8).unwrap();
        let worst_step = q
            .weight_scales
            .iter()
            .cloned()
            .fold(0.0f64, f64::max);
        assert!(q.max_error <= 0.5 * worst_step + 1e-12);
    }

    #[test]
    fn more_bits_means_less_error() {
        let net = Network::relu_mlp(4, &[8, 8], 2, 3).unwrap();
        let q4 = quantize(&net, 4).unwrap();
        let q8 = quantize(&net, 8).unwrap();
        let q16 = quantize(&net, 16).unwrap();
        assert!(q8.max_error <= q4.max_error);
        assert!(q16.max_error <= q8.max_error);
    }

    #[test]
    fn sixteen_bit_network_is_nearly_identical() {
        let net = Network::relu_mlp(4, &[8], 1, 7).unwrap();
        let q = quantize(&net, 16).unwrap();
        let x = Vector::from(vec![0.3, -0.5, 0.7, 0.1]);
        let a = net.forward(&x).unwrap()[0];
        let b = q.network.forward(&x).unwrap()[0];
        assert!((a - b).abs() < 1e-3, "{a} vs {b}");
    }

    #[test]
    fn architecture_is_preserved() {
        let net = Network::relu_mlp(6, &[10, 10], 3, 1).unwrap();
        let q = quantize(&net, 8).unwrap();
        assert_eq!(q.network.inputs(), 6);
        assert_eq!(q.network.outputs(), 3);
        assert_eq!(q.network.num_relu_neurons(), 20);
        assert_eq!(q.network.label(), net.label());
    }

    #[test]
    fn one_bit_rejected() {
        let net = Network::relu_mlp(2, &[2], 1, 0).unwrap();
        assert!(quantize(&net, 1).is_err());
        assert!(quantize(&net, 2).is_ok());
    }

    #[test]
    fn weights_land_on_the_grid() {
        let net = Network::relu_mlp(3, &[5], 1, 9).unwrap();
        let q = quantize(&net, 6).unwrap();
        for (layer, &scale) in q.network.layers().iter().zip(&q.weight_scales) {
            for &w in layer.weights().as_slice() {
                let ratio = w / scale;
                assert!(
                    (ratio - ratio.round()).abs() < 1e-9,
                    "weight {w} not on grid {scale}"
                );
            }
        }
    }
}
