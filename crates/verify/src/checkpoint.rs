//! Crash-safe checkpointing of branch-and-bound search state.
//!
//! A long verification query is an investment: hours of frontier
//! exploration that a crash, OOM kill or deadline would otherwise throw
//! away. This module defines a versioned, checksummed, atomically-written
//! snapshot of the live search state of [`crate::bab`] — enough to resume
//! a `TimedOut` (or SIGKILLed) run where it stopped — plus the
//! content-address that ties a snapshot to the exact (weights, property)
//! pair it belongs to.
//!
//! # File format
//!
//! ```text
//! magic "CNCK" | version u32 | sections… | fnv64(everything before)
//! section: tag u8 | payload_len u64 | payload | fnv64(payload)
//! ```
//!
//! All integers are little-endian; floats are stored as `f64::to_bits`.
//! Sections appear in fixed order: header, incumbent, warm-start pool,
//! frontier. Every section carries its own FNV-1a checksum and the whole
//! file carries a trailing one, so any single-byte corruption — torn
//! write, bit flip, truncation — is detected before anything is trusted.
//!
//! # What is (and is not) trusted from disk
//!
//! The snapshot is *combinatorial*, never numeric-derived state:
//!
//! * Frontier nodes carry phase assignments, bounds and tie-break
//!   sequence numbers. Bounds are re-validated (finite) and every node is
//!   re-bounded by the resumed search before anything depends on it.
//! * Warm starts are stored as **basis signatures** (basic column per row
//!   plus per-column status codes) only. Factorizations are re-derived
//!   from the model's own constraint columns on first use
//!   ([`certnn_lp::WarmStart::from_description`] always rebuilds with no
//!   frozen factor) — LU data from disk is never used.
//! * The incumbent witness is re-verified by a fresh forward pass before
//!   it is installed; the stored objective value is only a cross-check.
//! * α vectors are clamped to `[0, 1]`, where *any* value is sound.
//!
//! A resume against a snapshot whose query hash, checksums or structural
//! invariants do not match **never errors**: the search falls back to a
//! fresh solve tagged [`Degradation::CheckpointFallback`].

use crate::property::{InputSpec, LinearObjective};
use certnn_lp::Degradation;
use certnn_nn::network::Network;
use std::error::Error;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;
use std::time::Duration;

/// Magic bytes opening every checkpoint file.
pub const MAGIC: [u8; 4] = *b"CNCK";

/// Current format version. Readers reject anything else.
pub const FORMAT_VERSION: u32 = 1;

/// Default [`CheckpointPolicy::every_nodes`].
pub const DEFAULT_EVERY_NODES: usize = 64;

/// Default [`CheckpointPolicy::every`].
pub const DEFAULT_EVERY: Duration = Duration::from_secs(5);

const SEC_HEADER: u8 = 1;
const SEC_INCUMBENT: u8 = 2;
const SEC_WARM_POOL: u8 = 3;
const SEC_FRONTIER: u8 = 4;

/// Cached `ckpt.*` observability handles.
pub(crate) struct CkptMetrics {
    pub(crate) written: certnn_obs::Counter,
    pub(crate) bytes: certnn_obs::Counter,
    pub(crate) resume_ok: certnn_obs::Counter,
    pub(crate) corrupt_fallbacks: certnn_obs::Counter,
    pub(crate) snapshot_nanos: certnn_obs::Histogram,
}

pub(crate) fn ckpt_metrics() -> &'static CkptMetrics {
    static M: OnceLock<CkptMetrics> = OnceLock::new();
    M.get_or_init(|| CkptMetrics {
        written: certnn_obs::counter("ckpt.written"),
        bytes: certnn_obs::counter("ckpt.bytes"),
        resume_ok: certnn_obs::counter("ckpt.resume_ok"),
        corrupt_fallbacks: certnn_obs::counter("ckpt.corrupt_fallbacks"),
        snapshot_nanos: certnn_obs::histogram("ckpt.snapshot_nanos"),
    })
}

// ---------------------------------------------------------------------------
// FNV-1a
// ---------------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming FNV-1a 64-bit hasher — the workspace's standard cheap,
/// dependency-free content hash (same family as the LP basis signatures).
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a {
    /// Fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a(FNV_OFFSET)
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a little-endian `u64`.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs an `f64` by bit pattern (distinguishes `-0.0` from `0.0`
    /// and every NaN payload — exactly what a content address wants).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Final hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(bytes);
    h.finish()
}

/// Content-address of a verification query: an FNV-1a hash over the
/// network's full architecture and parameters (layer shapes, activation
/// kinds, every weight and bias bit) and the property (input box,
/// scenario constraints, objective terms and constant).
///
/// Two queries with the same fingerprint are byte-for-byte the same
/// question, so a checkpoint — or, later, a cached certificate — keyed by
/// it can be swapped between runs safely.
pub fn query_fingerprint(net: &Network, spec: &InputSpec, objective: &LinearObjective) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(net.layers().len() as u64);
    for layer in net.layers() {
        h.write_u64(layer.inputs() as u64);
        h.write_u64(layer.outputs() as u64);
        h.write(format!("{:?}", layer.activation()).as_bytes());
        for &w in layer.weights().as_slice() {
            h.write_f64(w);
        }
        for &b in layer.bias().iter() {
            h.write_f64(b);
        }
    }
    h.write_u64(spec.bounds().len() as u64);
    for iv in spec.bounds() {
        h.write_f64(iv.lo());
        h.write_f64(iv.hi());
    }
    h.write_u64(spec.constraints().len() as u64);
    for c in spec.constraints() {
        h.write(format!("{:?}", c.relation).as_bytes());
        h.write_f64(c.rhs);
        h.write_u64(c.terms.len() as u64);
        for &(i, v) in &c.terms {
            h.write_u64(i as u64);
            h.write_f64(v);
        }
    }
    h.write_u64(objective.terms.len() as u64);
    for &(i, v) in &objective.terms {
        h.write_u64(i as u64);
        h.write_f64(v);
    }
    h.write_f64(objective.constant);
    h.finish()
}

// ---------------------------------------------------------------------------
// Policy
// ---------------------------------------------------------------------------

/// When and where the branch-and-bound driver snapshots its search state.
///
/// The `dir` holds one file per in-flight query, named by the query's
/// [`query_fingerprint`] (`q<hex>.ckpt`), so multi-query runs (every
/// Table II width, every fleet member, every mixture component) checkpoint
/// independently and a resume finds each query's own state. Completed
/// queries delete their file.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointPolicy {
    /// Directory holding the per-query checkpoint files.
    pub dir: PathBuf,
    /// Snapshot after this many newly processed nodes (whichever of the
    /// two cadences fires first). Clamped to at least 1.
    pub every_nodes: usize,
    /// Snapshot after this much wall time since the last one.
    pub every: Duration,
    /// Run seed folded into the per-query file key: two runs whose
    /// configuration seeds differ never share snapshots even if their
    /// weights collide.
    pub seed: u64,
    /// Attempt to resume from an existing snapshot before solving.
    pub resume: bool,
}

impl CheckpointPolicy {
    /// Policy writing snapshots under `dir` at the default cadence,
    /// without resuming.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            every_nodes: DEFAULT_EVERY_NODES,
            every: DEFAULT_EVERY,
            seed: 0,
            resume: false,
        }
    }

    /// The checkpoint file for a query hash under this policy's directory.
    pub fn file_for(&self, query_hash: u64) -> PathBuf {
        self.dir.join(format!("q{query_hash:016x}.ckpt"))
    }
}

// ---------------------------------------------------------------------------
// Snapshot model
// ---------------------------------------------------------------------------

/// Serialized warm-start basis: the combinatorial description only (see
/// [`certnn_lp::WarmStart::describe`]); factorizations are re-derived on
/// resume, never stored.
#[derive(Debug, Clone, PartialEq)]
pub struct WarmDesc {
    /// Constraint rows of the LP the basis belongs to.
    pub m: u64,
    /// Structural variables of that LP.
    pub n_struct: u64,
    /// Basic column per row (`m` entries).
    pub basis: Vec<u64>,
    /// Per-column status codes (`n_struct + m` entries, encoding of
    /// [`certnn_lp::WarmStart::describe`]).
    pub status: Vec<u8>,
}

/// One serialized frontier node.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotNode {
    /// Proven upper bound of the node's subtree.
    pub bound: f64,
    /// Depth in the phase tree.
    pub depth: u64,
    /// Heap tie-break sequence number (restored so the resumed best-first
    /// pop order matches the uninterrupted run exactly).
    pub seq: u64,
    /// Panic-retry count carried over.
    pub retries: u8,
    /// Per-ReLU phase assignment: `0` open, `1` forced inactive,
    /// `2` forced active.
    pub phases: Vec<u8>,
    /// Inherited tuned α slopes, when α tuning was on.
    pub alpha: Option<Vec<f64>>,
    /// Index into [`Snapshot::warm_pool`], when the node carried a basis.
    pub warm_idx: Option<u64>,
}

/// A complete, self-validating snapshot of one query's search state.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// [`query_fingerprint`] (plus run-config context) of the query this
    /// state belongs to; a resume against any other hash is rejected.
    pub query_hash: u64,
    /// Run-configuration seed recorded at capture time.
    pub seed: u64,
    /// Fully processed nodes (claimed-but-incomplete work is *not*
    /// counted: it is re-queued in [`Snapshot::frontier`] and recounted
    /// when the resumed search claims it again).
    pub nodes_done: u64,
    /// Next heap tie-break sequence number to assign.
    pub next_seq: u64,
    /// Cumulative search wall time across all runs of this query, ns.
    pub elapsed_nanos: u64,
    /// Max bound over subtrees irrecoverably dropped (panic retries
    /// exhausted, dead workers); `-inf` when none. Folded into the final
    /// upper bound by the resumed run — lost work must never silently
    /// tighten the answer.
    pub dropped_bound: f64,
    /// Worst degradation recorded on the frontier at capture time.
    pub degradation: Degradation,
    /// Best verified incumbent: witness input and its objective value.
    pub incumbent: Option<(Vec<f64>, f64)>,
    /// Deduplicated warm-start bases referenced by the frontier.
    pub warm_pool: Vec<WarmDesc>,
    /// Open frontier: heap contents plus nodes claimed by workers at
    /// capture time.
    pub frontier: Vec<SnapshotNode>,
}

impl Snapshot {
    /// Structural validation beyond checksums: every phase vector has the
    /// query's ReLU count with codes in `{0,1,2}`, bounds and α values
    /// are finite, warm indices point into the pool, pool entries are
    /// dimensionally consistent, and the witness matches the input width.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Malformed`] naming the first violated invariant.
    pub fn validate(&self, total_relu: usize, num_inputs: usize) -> Result<(), CheckpointError> {
        for d in &self.warm_pool {
            if d.basis.len() as u64 != d.m {
                return Err(CheckpointError::Malformed("warm basis length != m"));
            }
            if d.status.len() as u64 != d.n_struct + d.m {
                return Err(CheckpointError::Malformed("warm status length != n_struct + m"));
            }
        }
        for n in &self.frontier {
            if n.phases.len() != total_relu {
                return Err(CheckpointError::Malformed("node phase vector has wrong length"));
            }
            if n.phases.iter().any(|&p| p > 2) {
                return Err(CheckpointError::Malformed("unknown phase code"));
            }
            if !n.bound.is_finite() {
                return Err(CheckpointError::Malformed("non-finite node bound"));
            }
            if let Some(a) = &n.alpha {
                if a.len() != total_relu {
                    return Err(CheckpointError::Malformed("alpha vector has wrong length"));
                }
                if a.iter().any(|v| !v.is_finite()) {
                    return Err(CheckpointError::Malformed("non-finite alpha"));
                }
            }
            if let Some(w) = n.warm_idx {
                if w as usize >= self.warm_pool.len() {
                    return Err(CheckpointError::Malformed("warm index out of range"));
                }
            }
        }
        if let Some((w, v)) = &self.incumbent {
            if w.len() != num_inputs {
                return Err(CheckpointError::Malformed("witness has wrong input width"));
            }
            if w.iter().any(|x| !x.is_finite()) || !v.is_finite() {
                return Err(CheckpointError::Malformed("non-finite incumbent"));
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Why a checkpoint could not be written, read or trusted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Filesystem failure (the kind plus the path involved).
    Io(std::io::ErrorKind, String),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's format version is not [`FORMAT_VERSION`].
    UnsupportedVersion(u32),
    /// The file ends before the advertised data (torn write).
    Truncated {
        /// Bytes the parser needed.
        wanted: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// A section's payload does not match its stored FNV-1a checksum.
    SectionChecksum(u8),
    /// The whole-file trailing checksum does not match.
    FileChecksum,
    /// A structural invariant does not hold (valid checksums, bad data).
    Malformed(&'static str),
    /// The snapshot belongs to a different (weights, property) pair.
    QueryMismatch {
        /// Hash the caller expected.
        expected: u64,
        /// Hash stored in the snapshot.
        found: u64,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(kind, path) => write!(f, "checkpoint io error ({kind:?}): {path}"),
            CheckpointError::BadMagic => f.write_str("not a checkpoint file (bad magic)"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint version {v} (expected {FORMAT_VERSION})")
            }
            CheckpointError::Truncated { wanted, available } => write!(
                f,
                "checkpoint truncated: needed {wanted} bytes, only {available} available"
            ),
            CheckpointError::SectionChecksum(tag) => {
                write!(f, "checksum mismatch in checkpoint section {tag}")
            }
            CheckpointError::FileChecksum => f.write_str("whole-file checksum mismatch"),
            CheckpointError::Malformed(why) => write!(f, "malformed checkpoint: {why}"),
            CheckpointError::QueryMismatch { expected, found } => write!(
                f,
                "checkpoint belongs to query {found:016x}, expected {expected:016x}"
            ),
        }
    }
}

impl Error for CheckpointError {}

fn io_err(path: &Path, e: &std::io::Error) -> CheckpointError {
    CheckpointError::Io(e.kind(), path.display().to_string())
}

// ---------------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------------

struct Enc(Vec<u8>);

impl Enc {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
}

fn encode_section(out: &mut Vec<u8>, tag: u8, payload: &[u8]) {
    out.push(tag);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&fnv64(payload).to_le_bytes());
}

/// Encodes a snapshot to its on-disk byte representation.
pub fn encode_snapshot(snap: &Snapshot) -> Vec<u8> {
    let mut out = Vec::with_capacity(4096);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());

    let mut h = Enc(Vec::new());
    h.u64(snap.query_hash);
    h.u64(snap.seed);
    h.u64(snap.nodes_done);
    h.u64(snap.next_seq);
    h.u64(snap.elapsed_nanos);
    h.f64(snap.dropped_bound);
    h.u8(encode_degradation(snap.degradation));
    encode_section(&mut out, SEC_HEADER, &h.0);

    let mut inc = Enc(Vec::new());
    match &snap.incumbent {
        None => inc.u8(0),
        Some((w, v)) => {
            inc.u8(1);
            inc.u64(w.len() as u64);
            for &x in w {
                inc.f64(x);
            }
            inc.f64(*v);
        }
    }
    encode_section(&mut out, SEC_INCUMBENT, &inc.0);

    let mut pool = Enc(Vec::new());
    pool.u64(snap.warm_pool.len() as u64);
    for d in &snap.warm_pool {
        pool.u64(d.m);
        pool.u64(d.n_struct);
        pool.u64(d.basis.len() as u64);
        for &b in &d.basis {
            pool.u64(b);
        }
        pool.u64(d.status.len() as u64);
        pool.0.extend_from_slice(&d.status);
    }
    encode_section(&mut out, SEC_WARM_POOL, &pool.0);

    let mut fr = Enc(Vec::new());
    fr.u64(snap.frontier.len() as u64);
    for n in &snap.frontier {
        fr.f64(n.bound);
        fr.u64(n.depth);
        fr.u64(n.seq);
        fr.u8(n.retries);
        fr.u64(n.phases.len() as u64);
        fr.0.extend_from_slice(&n.phases);
        match &n.alpha {
            None => fr.u8(0),
            Some(a) => {
                fr.u8(1);
                fr.u64(a.len() as u64);
                for &v in a {
                    fr.f64(v);
                }
            }
        }
        fr.u64(n.warm_idx.map_or(u64::MAX, |w| w));
    }
    encode_section(&mut out, SEC_FRONTIER, &fr.0);

    let file_sum = fnv64(&out);
    out.extend_from_slice(&file_sum.to_le_bytes());
    out
}

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self.pos.checked_add(n).ok_or(CheckpointError::Malformed("length overflow"))?;
        if end > self.buf.len() {
            return Err(CheckpointError::Truncated {
                wanted: n,
                available: self.buf.len() - self.pos,
            });
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }
    fn u64(&mut self) -> Result<u64, CheckpointError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }
    fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.u64()?))
    }
    /// Reads a length prefix that must be realisable from the remaining
    /// bytes (each element at least `elem_bytes` wide), so a corrupt
    /// length cannot trigger a huge allocation.
    fn len(&mut self, elem_bytes: usize) -> Result<usize, CheckpointError> {
        let n = self.u64()?;
        let n = usize::try_from(n).map_err(|_| CheckpointError::Malformed("length overflow"))?;
        let remaining = self.buf.len() - self.pos;
        if elem_bytes > 0 && n > remaining / elem_bytes.max(1) {
            return Err(CheckpointError::Truncated {
                wanted: n.saturating_mul(elem_bytes),
                available: remaining,
            });
        }
        Ok(n)
    }
    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn encode_degradation(d: Degradation) -> u8 {
    match d {
        Degradation::Exact => 0,
        Degradation::CheckpointFallback => 1,
        Degradation::ColdFallback => 2,
        Degradation::IntervalOnly => 3,
        Degradation::TimedOut => 4,
    }
}

fn decode_degradation(v: u8) -> Result<Degradation, CheckpointError> {
    Ok(match v {
        0 => Degradation::Exact,
        1 => Degradation::CheckpointFallback,
        2 => Degradation::ColdFallback,
        3 => Degradation::IntervalOnly,
        4 => Degradation::TimedOut,
        _ => return Err(CheckpointError::Malformed("unknown degradation code")),
    })
}

/// Reads one section, verifying tag and checksum, returning its payload.
fn section<'a>(dec: &mut Dec<'a>, tag: u8) -> Result<&'a [u8], CheckpointError> {
    let got = dec.u8()?;
    if got != tag {
        return Err(CheckpointError::Malformed("unexpected section tag"));
    }
    let len = dec.len(1)?;
    let payload = dec.take(len)?;
    let stored = dec.u64()?;
    if fnv64(payload) != stored {
        return Err(CheckpointError::SectionChecksum(tag));
    }
    Ok(payload)
}

/// Decodes a snapshot from its on-disk byte representation, verifying the
/// whole-file checksum first and then every section checksum, so no field
/// is interpreted before its integrity is established.
///
/// # Errors
///
/// Any [`CheckpointError`] variant other than `Io`/`QueryMismatch`.
pub fn decode_snapshot(bytes: &[u8]) -> Result<Snapshot, CheckpointError> {
    if bytes.len() < MAGIC.len() + 4 + 8 {
        return Err(CheckpointError::Truncated {
            wanted: MAGIC.len() + 4 + 8,
            available: bytes.len(),
        });
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 8);
    let mut stored = [0u8; 8];
    stored.copy_from_slice(trailer);
    if fnv64(body) != u64::from_le_bytes(stored) {
        return Err(CheckpointError::FileChecksum);
    }
    let mut dec = Dec { buf: body, pos: 0 };
    if dec.take(MAGIC.len())? != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let ver = {
        let b = dec.take(4)?;
        let mut a = [0u8; 4];
        a.copy_from_slice(b);
        u32::from_le_bytes(a)
    };
    if ver != FORMAT_VERSION {
        return Err(CheckpointError::UnsupportedVersion(ver));
    }

    let header = section(&mut dec, SEC_HEADER)?;
    let mut h = Dec { buf: header, pos: 0 };
    let query_hash = h.u64()?;
    let seed = h.u64()?;
    let nodes_done = h.u64()?;
    let next_seq = h.u64()?;
    let elapsed_nanos = h.u64()?;
    let dropped_bound = h.f64()?;
    let degradation = decode_degradation(h.u8()?)?;
    if !h.done() {
        return Err(CheckpointError::Malformed("trailing bytes in header"));
    }

    let inc_payload = section(&mut dec, SEC_INCUMBENT)?;
    let mut i = Dec { buf: inc_payload, pos: 0 };
    let incumbent = match i.u8()? {
        0 => None,
        1 => {
            let n = i.len(8)?;
            let mut w = Vec::with_capacity(n);
            for _ in 0..n {
                w.push(i.f64()?);
            }
            Some((w, i.f64()?))
        }
        _ => return Err(CheckpointError::Malformed("bad incumbent flag")),
    };
    if !i.done() {
        return Err(CheckpointError::Malformed("trailing bytes in incumbent"));
    }

    let pool_payload = section(&mut dec, SEC_WARM_POOL)?;
    let mut p = Dec { buf: pool_payload, pos: 0 };
    let pool_len = p.len(24)?;
    let mut warm_pool = Vec::with_capacity(pool_len);
    for _ in 0..pool_len {
        let m = p.u64()?;
        let n_struct = p.u64()?;
        let bl = p.len(8)?;
        let mut basis = Vec::with_capacity(bl);
        for _ in 0..bl {
            basis.push(p.u64()?);
        }
        let sl = p.len(1)?;
        let status = p.take(sl)?.to_vec();
        warm_pool.push(WarmDesc { m, n_struct, basis, status });
    }
    if !p.done() {
        return Err(CheckpointError::Malformed("trailing bytes in warm pool"));
    }

    let fr_payload = section(&mut dec, SEC_FRONTIER)?;
    let mut fdec = Dec { buf: fr_payload, pos: 0 };
    let n_nodes = fdec.len(34)?;
    let mut frontier = Vec::with_capacity(n_nodes);
    for _ in 0..n_nodes {
        let bound = fdec.f64()?;
        let depth = fdec.u64()?;
        let seq = fdec.u64()?;
        let retries = fdec.u8()?;
        let pl = fdec.len(1)?;
        let phases = fdec.take(pl)?.to_vec();
        let alpha = match fdec.u8()? {
            0 => None,
            1 => {
                let al = fdec.len(8)?;
                let mut a = Vec::with_capacity(al);
                for _ in 0..al {
                    a.push(fdec.f64()?);
                }
                Some(a)
            }
            _ => return Err(CheckpointError::Malformed("bad alpha flag")),
        };
        let warm_idx = match fdec.u64()? {
            u64::MAX => None,
            w => Some(w),
        };
        frontier.push(SnapshotNode { bound, depth, seq, retries, phases, alpha, warm_idx });
    }
    if !fdec.done() {
        return Err(CheckpointError::Malformed("trailing bytes in frontier"));
    }
    if !dec.done() {
        return Err(CheckpointError::Malformed("trailing bytes after sections"));
    }

    Ok(Snapshot {
        query_hash,
        seed,
        nodes_done,
        next_seq,
        elapsed_nanos,
        dropped_bound,
        degradation,
        incumbent,
        warm_pool,
        frontier,
    })
}

// ---------------------------------------------------------------------------
// Atomic file IO
// ---------------------------------------------------------------------------

/// Writes a snapshot atomically: encode → temp file in the same directory
/// → `fsync` → rename over the target → best-effort directory `fsync`.
/// A crash at any point leaves either the previous complete checkpoint or
/// none — never a torn file under the real name. Returns the bytes
/// written.
///
/// # Errors
///
/// [`CheckpointError::Io`] on any filesystem failure.
pub fn write_snapshot(path: &Path, snap: &Snapshot) -> Result<u64, CheckpointError> {
    let bytes = encode_snapshot(snap);
    let tmp = path.with_extension("ckpt.tmp");
    {
        let mut f = fs::File::create(&tmp).map_err(|e| io_err(&tmp, &e))?;
        f.write_all(&bytes).map_err(|e| io_err(&tmp, &e))?;
        f.sync_all().map_err(|e| io_err(&tmp, &e))?;
    }
    fs::rename(&tmp, path).map_err(|e| io_err(path, &e))?;
    if let Some(dir) = path.parent() {
        // Persist the rename itself; failure here only risks losing the
        // *newest* snapshot on a power cut, never corrupting one.
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(bytes.len() as u64)
}

/// Reads and fully verifies a snapshot file (checksums and structure of
/// the byte format; semantic validation is [`Snapshot::validate`]).
///
/// # Errors
///
/// [`CheckpointError::Io`] (kind `NotFound` when no checkpoint exists) or
/// any decode error.
pub fn read_snapshot(path: &Path) -> Result<Snapshot, CheckpointError> {
    let bytes = fs::read(path).map_err(|e| io_err(path, &e))?;
    decode_snapshot(&bytes)
}

/// Removes a query's checkpoint file, ignoring a missing one. Called when
/// a query completes: a finished answer must not leave a stale resume
/// handle behind.
pub fn remove_snapshot(path: &Path) {
    match fs::remove_file(path) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => {
            certnn_obs::event(
                "ckpt.remove_failed",
                vec![
                    ("path", path.display().to_string().into()),
                    ("kind", format!("{:?}", e.kind()).into()),
                ],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certnn_linalg::Interval;
    use proptest::prelude::*;

    fn sample_snapshot() -> Snapshot {
        Snapshot {
            query_hash: 0xdead_beef_cafe_f00d,
            seed: 7,
            nodes_done: 42,
            next_seq: 99,
            elapsed_nanos: 1_234_567,
            dropped_bound: f64::NEG_INFINITY,
            degradation: Degradation::TimedOut,
            incumbent: Some((vec![0.25, -1.0, 0.5], 1.75)),
            warm_pool: vec![WarmDesc {
                m: 2,
                n_struct: 3,
                basis: vec![0, 4],
                status: vec![0, 1, 2, 1, 0],
            }],
            frontier: vec![
                SnapshotNode {
                    bound: 3.5,
                    depth: 2,
                    seq: 11,
                    retries: 0,
                    phases: vec![0, 1, 2, 0],
                    alpha: Some(vec![0.0, 0.5, 1.0, 0.25]),
                    warm_idx: Some(0),
                },
                SnapshotNode {
                    bound: 1.25,
                    depth: 5,
                    seq: 17,
                    retries: 1,
                    phases: vec![2, 2, 1, 0],
                    alpha: None,
                    warm_idx: None,
                },
            ],
        }
    }

    #[test]
    fn round_trips_bit_identically() {
        let snap = sample_snapshot();
        let bytes = encode_snapshot(&snap);
        let back = decode_snapshot(&bytes).unwrap();
        assert_eq!(back, snap);
        assert_eq!(encode_snapshot(&back), bytes);
    }

    #[test]
    fn every_truncation_is_detected() {
        let bytes = encode_snapshot(&sample_snapshot());
        for cut in 0..bytes.len() {
            assert!(
                decode_snapshot(&bytes[..cut]).is_err(),
                "truncation at {cut}/{} must not decode",
                bytes.len()
            );
        }
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let bytes = encode_snapshot(&sample_snapshot());
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x40;
            assert!(
                decode_snapshot(&corrupt).is_err(),
                "bit flip at byte {i} must not decode"
            );
        }
    }

    #[test]
    fn validate_rejects_structural_lies() {
        let snap = sample_snapshot();
        assert!(snap.validate(4, 3).is_ok());
        assert!(matches!(
            snap.validate(5, 3),
            Err(CheckpointError::Malformed(_))
        ));
        assert!(matches!(
            snap.validate(4, 2),
            Err(CheckpointError::Malformed(_))
        ));
        let mut bad = snap.clone();
        bad.frontier[0].warm_idx = Some(3);
        assert!(bad.validate(4, 3).is_err());
        let mut bad = snap.clone();
        bad.frontier[0].bound = f64::NAN;
        assert!(bad.validate(4, 3).is_err());
        let mut bad = snap;
        bad.warm_pool[0].basis.pop();
        assert!(bad.validate(4, 3).is_err());
    }

    #[test]
    fn fingerprint_separates_weights_and_properties() {
        let a = Network::relu_mlp(3, &[4], 1, 1).unwrap();
        let b = Network::relu_mlp(3, &[4], 1, 2).unwrap();
        let spec = InputSpec::from_box(vec![Interval::new(-1.0, 1.0); 3]).unwrap();
        let spec2 = InputSpec::from_box(vec![Interval::new(-1.0, 0.5); 3]).unwrap();
        let obj = LinearObjective::output(0);
        let obj2 = LinearObjective {
            terms: vec![(0, 1.0)],
            constant: 1.0,
        };
        let base = query_fingerprint(&a, &spec, &obj);
        assert_eq!(base, query_fingerprint(&a, &spec, &obj));
        assert_ne!(base, query_fingerprint(&b, &spec, &obj));
        assert_ne!(base, query_fingerprint(&a, &spec2, &obj));
        assert_ne!(base, query_fingerprint(&a, &spec, &obj2));
    }

    #[test]
    fn atomic_write_then_read_round_trips() {
        let dir = std::env::temp_dir().join(format!("certnn_ckpt_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("q0.ckpt");
        let snap = sample_snapshot();
        let bytes = write_snapshot(&path, &snap).unwrap();
        assert!(bytes > 0);
        assert_eq!(read_snapshot(&path).unwrap(), snap);
        // Overwrite is atomic too (rename over existing).
        let mut snap2 = sample_snapshot();
        snap2.nodes_done = 43;
        write_snapshot(&path, &snap2).unwrap();
        assert_eq!(read_snapshot(&path).unwrap().nodes_done, 43);
        remove_snapshot(&path);
        assert!(matches!(
            read_snapshot(&path),
            Err(CheckpointError::Io(std::io::ErrorKind::NotFound, _))
        ));
        remove_snapshot(&path); // idempotent on missing files
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn arb_snapshot() -> impl Strategy<Value = Snapshot> {
        let node = (
            -1.0e6..1.0e6f64,
            0u64..64,
            0u64..1000,
            prop::collection::vec(0u8..3, 0..12),
            prop::collection::vec(0.0..1.0f64, 0..12),
            any::<bool>(),
            any::<bool>(),
        )
            .prop_map(|(bound, depth, seq, phases, alpha, has_alpha, has_warm)| SnapshotNode {
                bound,
                depth,
                seq,
                retries: (seq % 3) as u8,
                phases,
                alpha: has_alpha.then_some(alpha),
                warm_idx: has_warm.then_some(seq % 4),
            });
        (
            any::<u64>(),
            any::<u64>(),
            0u64..100_000,
            prop::collection::vec(-10.0..10.0f64, 0..6),
            prop::collection::vec(node, 0..8),
            any::<bool>(),
        )
            .prop_map(|(query_hash, seed, nodes_done, witness, frontier, has_inc)| Snapshot {
                query_hash,
                seed,
                nodes_done,
                next_seq: nodes_done.wrapping_mul(2),
                elapsed_nanos: nodes_done.wrapping_mul(31),
                dropped_bound: if nodes_done % 2 == 0 {
                    f64::NEG_INFINITY
                } else {
                    nodes_done as f64
                },
                degradation: match nodes_done % 5 {
                    0 => Degradation::Exact,
                    1 => Degradation::CheckpointFallback,
                    2 => Degradation::ColdFallback,
                    3 => Degradation::IntervalOnly,
                    _ => Degradation::TimedOut,
                },
                incumbent: has_inc.then(|| {
                    let v = witness.iter().sum();
                    (witness, v)
                }),
                warm_pool: vec![WarmDesc {
                    m: 2,
                    n_struct: 2,
                    basis: vec![1, 3],
                    status: vec![1, 0, 2, 0],
                }],
                frontier,
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn proptest_codec_round_trips_bit_identically(snap in arb_snapshot()) {
            let bytes = encode_snapshot(&snap);
            let back = decode_snapshot(&bytes).expect("valid snapshot must decode");
            prop_assert_eq!(&back, &snap);
            prop_assert_eq!(encode_snapshot(&back), bytes);
        }

        #[test]
        fn proptest_single_byte_corruption_is_detected(
            snap in arb_snapshot(),
            pos_seed in any::<u64>(),
            flip in 1u8..=255,
        ) {
            let mut bytes = encode_snapshot(&snap);
            let pos = (pos_seed % bytes.len() as u64) as usize;
            bytes[pos] ^= flip;
            prop_assert!(
                decode_snapshot(&bytes).is_err(),
                "corrupting byte {} with xor {:#x} must be detected", pos, flip
            );
        }
    }
}
