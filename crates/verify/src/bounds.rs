//! Sound per-neuron bound propagation.
//!
//! All analyses take the input box and return guaranteed intervals for
//! every pre-activation and activation. Their point is threefold:
//!
//! * Every ReLU neuron whose pre-activation interval does not straddle
//!   zero is *stable* and can be encoded as a plain linear constraint —
//!   no binary variable, no branching.
//! * For the remaining unstable neurons, the interval endpoints are the
//!   big-M constants of the MILP encoding; tighter bounds mean a tighter
//!   LP relaxation and a smaller branch-and-bound tree.
//! * The phase-aware variant ([`analyze_with_phases`]) re-propagates
//!   bounds under a partial assignment of ReLU phases — the bounding
//!   engine of the neuron branch-and-bound in [`crate::bab`].
//!
//! [`interval_bounds`] is plain interval arithmetic (IBP).
//! [`symbolic_bounds`] keeps, for every neuron, linear lower/upper bounding
//! functions *of the network input* (the DeepPoly/CROWN triangle
//! relaxation) and concretises them against the box — never looser than
//! IBP, usually much tighter after two or more layers.

use crate::property::LinearObjective;
use crate::VerifyError;
use certnn_linalg::{Interval, Matrix, Vector};
use certnn_nn::activation::Activation;
use certnn_nn::network::Network;

/// Guaranteed bounds for every neuron of a network under an input box.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkBounds {
    /// `pre[l][j]`: bounds on the pre-activation of neuron `j` in layer `l`.
    pub pre: Vec<Vec<Interval>>,
    /// `post[l][j]`: bounds on the activation of neuron `j` in layer `l`.
    pub post: Vec<Vec<Interval>>,
}

impl NetworkBounds {
    /// Bounds on the network outputs (post-activations of the last layer).
    ///
    /// # Panics
    ///
    /// Panics if the bounds are empty (cannot happen for values returned by
    /// this module).
    pub fn output_bounds(&self) -> &[Interval] {
        self.post.last().expect("nonempty network")
    }

    /// Number of ReLU neurons whose pre-activation straddles zero — each
    /// costs one binary variable in the MILP encoding.
    pub fn count_unstable(&self, net: &Network) -> usize {
        net.layers()
            .iter()
            .zip(&self.pre)
            .filter(|(l, _)| l.activation() == Activation::Relu)
            .map(|(_, pre)| pre.iter().filter(|i| i.straddles_zero()).count())
            .sum()
    }

    /// Total width of all pre-activation intervals — a scalar tightness
    /// metric used by the `bounds_ablation` bench.
    pub fn total_pre_width(&self) -> f64 {
        self.pre
            .iter()
            .flat_map(|layer| layer.iter().map(Interval::width))
            .sum()
    }
}

/// Validates the box against the network input width.
fn check_box(net: &Network, input_box: &[Interval]) -> Result<(), VerifyError> {
    if input_box.len() != net.inputs() {
        return Err(VerifyError::SpecMismatch {
            network_inputs: net.inputs(),
            spec_inputs: input_box.len(),
        });
    }
    Ok(())
}

/// Interval bound propagation.
///
/// # Errors
///
/// Returns [`VerifyError::SpecMismatch`] if the box width differs from the
/// network's input width.
pub fn interval_bounds(net: &Network, input_box: &[Interval]) -> Result<NetworkBounds, VerifyError> {
    check_box(net, input_box)?;
    let mut pre = Vec::with_capacity(net.layers().len());
    let mut post = Vec::with_capacity(net.layers().len());
    let mut current: Vec<Interval> = input_box.to_vec();
    for layer in net.layers() {
        let w = layer.weights();
        let b = layer.bias();
        let mut z = Vec::with_capacity(layer.outputs());
        for r in 0..layer.outputs() {
            let mut acc = Interval::point(b[r]);
            for (c, iv) in current.iter().enumerate() {
                acc = acc + *iv * w[(r, c)];
            }
            z.push(acc);
        }
        let a: Vec<Interval> = z.iter().map(|iv| layer.activation().interval(*iv)).collect();
        pre.push(z);
        current = a.clone();
        post.push(a);
    }
    Ok(NetworkBounds { pre, post })
}

/// Plain interval-arithmetic upper bound on a linear output functional
/// over `input_box` — the loosest rung of the degradation ladder, and
/// therefore the ceiling no degraded (timed-out or fault-folded) answer
/// is allowed to exceed. The search engines clamp every reported bound
/// to this value; exact optima already sit below it.
///
/// # Errors
///
/// Returns [`VerifyError::SpecMismatch`] if the box width differs from
/// the network's input width.
pub fn interval_objective_ceiling(
    net: &Network,
    input_box: &[Interval],
    objective: &LinearObjective,
) -> Result<f64, VerifyError> {
    let nb = interval_bounds(net, input_box)?;
    let out = nb.output_bounds();
    let mut ub = objective.constant;
    for &(o, c) in &objective.terms {
        ub += if c >= 0.0 { c * out[o].hi() } else { c * out[o].lo() };
    }
    Ok(ub)
}

/// Linear symbolic bounds of one layer's neurons, expressed over the
/// network input: `Al·x + bl ≤ v ≤ Au·x + bu`.
#[derive(Debug, Clone)]
struct SymbolicBounds {
    lower_a: Matrix,
    lower_b: Vector,
    upper_a: Matrix,
    upper_b: Vector,
}

impl SymbolicBounds {
    /// Buffer with `rows` rows over `n_in` input columns, all zero.
    fn with_capacity(rows: usize, n_in: usize) -> Self {
        Self {
            lower_a: Matrix::zeros(rows, n_in),
            lower_b: Vector::zeros(rows),
            upper_a: Matrix::zeros(rows, n_in),
            upper_b: Vector::zeros(rows),
        }
    }

    /// Reinitialises the first `n` rows to the exact identity bounds
    /// `x ≤ v ≤ x` of the network input (the symbolic state before the
    /// first layer).
    fn load_identity(&mut self, n: usize) {
        for r in 0..n {
            for c in 0..n {
                let v = if r == c { 1.0 } else { 0.0 };
                self.lower_a[(r, c)] = v;
                self.upper_a[(r, c)] = v;
            }
            self.lower_b[r] = 0.0;
            self.upper_b[r] = 0.0;
        }
    }

    /// Concretises row `r` against the input box.
    fn concretize_row(&self, r: usize, input_box: &[Interval]) -> Interval {
        let mut lo = self.lower_b[r];
        let mut hi = self.upper_b[r];
        for (c, iv) in input_box.iter().enumerate() {
            let al = self.lower_a[(r, c)];
            lo += if al >= 0.0 { al * iv.lo() } else { al * iv.hi() };
            let au = self.upper_a[(r, c)];
            hi += if au >= 0.0 { au * iv.hi() } else { au * iv.lo() };
        }
        // Floating-point slack can produce lo marginally above hi.
        if lo > hi {
            let mid = 0.5 * (lo + hi);
            Interval::point(mid)
        } else {
            Interval::new(lo, hi)
        }
    }

    fn zero_row(&mut self, r: usize, n_in: usize) {
        for c in 0..n_in {
            self.lower_a[(r, c)] = 0.0;
            self.upper_a[(r, c)] = 0.0;
        }
        self.lower_b[r] = 0.0;
        self.upper_b[r] = 0.0;
    }
}

/// A partial assignment of ReLU phases, indexed over ReLU neurons in
/// layer-major order (the same order as
/// [`certnn_trace::mcdc::branch_signature`](https://docs.rs)): `Some(true)`
/// forces *active* (`y = z, z ≥ 0`), `Some(false)` forces *inactive*
/// (`y = 0, z ≤ 0`), `None` leaves the neuron to the relaxation.
pub type Phases = [Option<bool>];

/// Result of a phase-aware symbolic analysis.
#[derive(Debug, Clone)]
pub struct PhasedAnalysis {
    /// Per-neuron bounds under the phase assignment.
    pub bounds: NetworkBounds,
    /// Sound upper bound on the objective over the box ∩ phase region
    /// (`−∞` when the phase region is empty).
    pub objective_upper: f64,
    /// The box corner maximising the objective's upper surrogate — a
    /// genuine input whose forward pass yields a lower bound.
    pub maximizer: Vector,
    /// `true` if the phase assignment contradicts the propagated bounds
    /// (the region is empty).
    pub conflict: bool,
    /// Still-unstable, unfixed ReLU neurons as `(flat index, interval
    /// width)`, layer-major — the branching candidates.
    pub unstable: Vec<(usize, f64)>,
}

/// Reusable phase-aware analyzer over one `(network, input box)` pair.
///
/// [`analyze_with_phases`] is called at every node of the neuron
/// branch-and-bound, and a fresh call pays for two full coefficient
/// matrices per layer plus a complete interval-bound propagation — all of
/// which depend only on the network and the box, not on the phases. This
/// analyzer hoists that state out of the per-node loop:
///
/// * the IBP result is computed once (lazily — phase-forced calls never
///   need it) and cached,
/// * the two symbolic coefficient buffers are allocated once at the
///   widest layer size and reused by every subsequent [`analyze`] call,
///   with the ReLU activation step rewritten **in place** (every update
///   is an element-wise scale, so no aliasing hazard).
///
/// Each branch-and-bound worker owns one `PhaseAnalyzer`; results are
/// identical to the allocate-per-call path, which remains available as
/// the [`analyze_with_phases`] convenience wrapper.
///
/// [`analyze`]: PhaseAnalyzer::analyze
pub struct PhaseAnalyzer<'a> {
    net: &'a Network,
    input_box: &'a [Interval],
    ibp: Option<NetworkBounds>,
    cur: SymbolicBounds,
    nxt: SymbolicBounds,
    /// Scratch α vector reused across [`analyze_tuned`] calls so the
    /// coordinate-descent loop allocates nothing per node.
    ///
    /// [`analyze_tuned`]: PhaseAnalyzer::analyze_tuned
    alpha_scratch: Vec<f64>,
    /// Scratch coordinate list for the descent loop (flat indices of the
    /// incumbent's unstable neurons).
    coord_scratch: Vec<usize>,
}

impl<'a> PhaseAnalyzer<'a> {
    /// Prepares reusable buffers for `net` under `input_box`.
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError::SpecMismatch`] if the box width differs
    /// from the network's input width.
    pub fn new(net: &'a Network, input_box: &'a [Interval]) -> Result<Self, VerifyError> {
        check_box(net, input_box)?;
        let n_in = net.inputs();
        let max_rows = net
            .layers()
            .iter()
            .map(|l| l.outputs())
            .max()
            .unwrap_or(0)
            .max(n_in);
        Ok(Self {
            net,
            input_box,
            ibp: None,
            cur: SymbolicBounds::with_capacity(max_rows, n_in),
            nxt: SymbolicBounds::with_capacity(max_rows, n_in),
            alpha_scratch: Vec::new(),
            coord_scratch: Vec::new(),
        })
    }

    /// DeepPoly/CROWN-style symbolic propagation under a partial ReLU
    /// phase assignment, with a symbolic objective bound.
    ///
    /// Passing all-`None` phases and reading `bounds` reproduces
    /// [`symbolic_bounds`]. The `objective_upper` is computed by
    /// combining the output layer's symbolic bounds with the objective's
    /// coefficients *before* concretisation, which is tighter than
    /// combining concretised output intervals.
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError::NotPiecewiseLinear`] for non-ReLU/identity
    /// layers, and [`VerifyError::SpecMismatch`] if `phases` is non-empty
    /// but shorter than the network's ReLU neuron count.
    pub fn analyze(
        &mut self,
        phases: &Phases,
        objective: &LinearObjective,
    ) -> Result<PhasedAnalysis, VerifyError> {
        self.analyze_impl(phases, objective, None, None)
    }

    /// [`analyze`] with an explicit lower-slope vector for unstable
    /// ReLUs: neuron `f` (flat layer-major ReLU index) uses
    /// `alpha[f].clamp(0.0, 1.0)` instead of the built-in heuristic.
    /// Sound for *any* α, because `relu(z) ≥ α·z` holds pointwise for
    /// every α ∈ [0, 1]. `alpha` must cover every ReLU neuron.
    ///
    /// # Errors
    ///
    /// As [`analyze`], plus [`VerifyError::SpecMismatch`] when `alpha`
    /// is shorter than the network's ReLU neuron count.
    ///
    /// [`analyze`]: PhaseAnalyzer::analyze
    pub fn analyze_with_alpha(
        &mut self,
        phases: &Phases,
        objective: &LinearObjective,
        alpha: &[f64],
    ) -> Result<PhasedAnalysis, VerifyError> {
        if alpha.len() < self.net.num_relu_neurons() {
            return Err(VerifyError::SpecMismatch {
                network_inputs: self.net.num_relu_neurons(),
                spec_inputs: alpha.len(),
            });
        }
        self.analyze_impl(phases, objective, Some(alpha), None)
    }

    #[allow(clippy::needless_range_loop)] // row-indexed symbolic updates
    fn analyze_impl(
        &mut self,
        phases: &Phases,
        objective: &LinearObjective,
        alpha: Option<&[f64]>,
        mut capture: Option<&mut Vec<f64>>,
    ) -> Result<PhasedAnalysis, VerifyError> {
        let net = self.net;
        let input_box = self.input_box;
        let total_relu = net.num_relu_neurons();
        if !phases.is_empty() && phases.len() < total_relu {
            return Err(VerifyError::SpecMismatch {
                network_inputs: total_relu,
                spec_inputs: phases.len(),
            });
        }
        if let Some(cap) = capture.as_deref_mut() {
            cap.clear();
            cap.resize(total_relu, 0.0);
        }
        let n_in = net.inputs();
        let mut pre = Vec::with_capacity(net.layers().len());
        let mut post = Vec::with_capacity(net.layers().len());
        let mut conflict = false;
        let mut unstable = Vec::new();
        let mut relu_cursor = 0usize;

        // The IBP intersection below is only sound (and only applied)
        // when no phase is forced, so compute it lazily: pure
        // branch-and-bound node calls never pay for it.
        let phase_free = phases.is_empty() || phases.iter().all(Option::is_none);
        if phase_free && self.ibp.is_none() {
            self.ibp = Some(interval_bounds(net, input_box)?);
        }

        self.cur.load_identity(n_in);

        for (li, layer) in net.layers().iter().enumerate() {
            if !layer.activation().is_piecewise_linear() {
                return Err(VerifyError::NotPiecewiseLinear { layer: li });
            }
            let w = layer.weights();
            let b = layer.bias();
            let rows = layer.outputs();

            // Affine step: z = W·a + b, with W split by sign for each
            // bound. Reads `cur` (previous activation symbolics), fully
            // overwrites the first `rows` rows of `nxt`.
            let (prev, z_sym) = (&self.cur, &mut self.nxt);
            for r in 0..rows {
                z_sym.zero_row(r, n_in);
                z_sym.lower_b[r] = b[r];
                z_sym.upper_b[r] = b[r];
                for j in 0..layer.inputs() {
                    let wij = w[(r, j)];
                    if wij == 0.0 {
                        continue;
                    }
                    let (use_lo_a, use_lo_b, use_hi_a, use_hi_b) = if wij > 0.0 {
                        (&prev.lower_a, &prev.lower_b, &prev.upper_a, &prev.upper_b)
                    } else {
                        (&prev.upper_a, &prev.upper_b, &prev.lower_a, &prev.lower_b)
                    };
                    for c in 0..n_in {
                        z_sym.lower_a[(r, c)] += wij * use_lo_a[(j, c)];
                        z_sym.upper_a[(r, c)] += wij * use_hi_a[(j, c)];
                    }
                    z_sym.lower_b[r] += wij * use_lo_b[j];
                    z_sym.upper_b[r] += wij * use_hi_b[j];
                }
            }
            // Concretise pre-activations; intersect with IBP (phase-free,
            // so only valid as a *relaxation* intersection when no phase
            // forces the neuron — under forced phases the symbolic bound
            // already describes the phase-linearised surrogate and IBP
            // stays sound for it only in the unforced case; keep the
            // intersection only when no phases are active at all to stay
            // conservative).
            let mut z_conc = Vec::with_capacity(rows);
            for r in 0..rows {
                let sym = z_sym.concretize_row(r, input_box);
                let both = match (phase_free, &self.ibp) {
                    (true, Some(ibp)) => sym.intersect(&ibp.pre[li][r]).unwrap_or(sym),
                    _ => sym,
                };
                z_conc.push(both);
            }

            // Activation step, rewriting `nxt` in place: every ReLU case
            // either zeroes a row or scales its own elements, so reading
            // the pre-activation coefficient while writing the activation
            // one is safe element-by-element.
            let sym = &mut self.nxt;
            let a_conc = match layer.activation() {
                Activation::Identity => z_conc.clone(),
                Activation::Relu => {
                    let mut conc = Vec::with_capacity(rows);
                    for r in 0..rows {
                        let iv = z_conc[r];
                        let phase = phases.get(relu_cursor).copied().flatten();
                        let flat = relu_cursor;
                        relu_cursor += 1;
                        match phase {
                            Some(false) => {
                                // Forced inactive: region needs z ≤ 0.
                                if iv.lo() > 1e-9 {
                                    conflict = true;
                                }
                                sym.zero_row(r, n_in);
                                conc.push(Interval::zero());
                            }
                            Some(true) => {
                                // Forced active: region needs z ≥ 0; the
                                // surrogate keeps y = z exactly.
                                if iv.hi() < -1e-9 {
                                    conflict = true;
                                }
                                conc.push(iv);
                            }
                            None => {
                                if iv.is_nonpositive() {
                                    sym.zero_row(r, n_in);
                                    conc.push(Interval::zero());
                                } else if iv.is_nonnegative() {
                                    conc.push(iv);
                                } else {
                                    // Unstable: triangle relaxation.
                                    let (l, u) = (iv.lo(), iv.hi());
                                    unstable.push((flat, iv.width()));
                                    let slope = u / (u - l);
                                    for c in 0..n_in {
                                        sym.upper_a[(r, c)] *= slope;
                                    }
                                    sym.upper_b[r] = slope * (sym.upper_b[r] - l);
                                    let lambda = match alpha {
                                        Some(a) => a[flat].clamp(0.0, 1.0),
                                        None => {
                                            if u >= -l {
                                                1.0
                                            } else {
                                                0.0
                                            }
                                        }
                                    };
                                    if let Some(cap) = capture.as_deref_mut() {
                                        cap[flat] = lambda;
                                    }
                                    for c in 0..n_in {
                                        sym.lower_a[(r, c)] *= lambda;
                                    }
                                    sym.lower_b[r] *= lambda;
                                    conc.push(iv.relu());
                                }
                            }
                        }
                    }
                    conc
                }
                Activation::Tanh => unreachable!("checked above"),
            };

            pre.push(z_conc);
            post.push(a_conc);
            std::mem::swap(&mut self.cur, &mut self.nxt);
        }

        // Combine the output symbolics with the objective before
        // concretising.
        let out_sym = &self.cur;
        let mut obj_a = vec![0.0; n_in];
        let mut obj_b = objective.constant;
        for &(o, c) in &objective.terms {
            if c == 0.0 {
                continue;
            }
            let (a_mat, b_vec) = if c > 0.0 {
                (&out_sym.upper_a, &out_sym.upper_b)
            } else {
                (&out_sym.lower_a, &out_sym.lower_b)
            };
            for (i, slot) in obj_a.iter_mut().enumerate() {
                *slot += c * a_mat[(o, i)];
            }
            obj_b += c * b_vec[o];
        }
        let mut objective_upper = obj_b;
        let maximizer: Vector = input_box
            .iter()
            .zip(&obj_a)
            .map(|(iv, &a)| {
                objective_upper += if a >= 0.0 { a * iv.hi() } else { a * iv.lo() };
                if a > 0.0 {
                    iv.hi()
                } else {
                    iv.lo()
                }
            })
            .collect();
        if conflict {
            objective_upper = f64::NEG_INFINITY;
        }

        Ok(PhasedAnalysis {
            bounds: NetworkBounds { pre, post },
            objective_upper,
            maximizer,
            conflict,
            unstable,
        })
    }

    /// α-optimized analysis: coordinate descent over the unstable-ReLU
    /// lower slopes, minimising the symbolic objective upper bound.
    ///
    /// * `iters == 0` reproduces [`analyze`] bit-for-bit and returns no
    ///   α vector — the zero-cost off switch.
    /// * Otherwise the heuristic slopes are evaluated first (so tuning
    ///   can never end looser than the heuristic), `warm` — typically
    ///   the parent node's tuned α — is adopted when strictly better,
    ///   and then up to `iters` rounds flip one unstable neuron's slope
    ///   at a time between the `{0, 1}` vertices, keeping strict
    ///   improvements. Rounds stop early once a full sweep improves
    ///   nothing.
    ///
    /// Returns the best analysis found together with the α vector that
    /// produced it (`None` when `iters == 0` or nothing was tuned).
    /// All candidate slopes are sound, so the minimum over candidates is
    /// a valid upper bound; a conflict (`objective_upper == −∞`) under
    /// any sound α proves the region empty.
    ///
    /// # Errors
    ///
    /// As [`analyze`].
    ///
    /// [`analyze`]: PhaseAnalyzer::analyze
    pub fn analyze_tuned(
        &mut self,
        phases: &Phases,
        objective: &LinearObjective,
        iters: usize,
        warm: Option<&[f64]>,
    ) -> Result<(PhasedAnalysis, Option<Vec<f64>>), VerifyError> {
        if iters == 0 {
            return Ok((self.analyze(phases, objective)?, None));
        }
        let mut alpha = std::mem::take(&mut self.alpha_scratch);
        let mut coords = std::mem::take(&mut self.coord_scratch);
        let result = self.tune_alpha(phases, objective, iters, warm, &mut alpha, &mut coords);
        let out = match &result {
            Ok(_) => Some(alpha.clone()),
            Err(_) => None,
        };
        self.alpha_scratch = alpha;
        self.coord_scratch = coords;
        Ok((result?, out))
    }

    /// Cheap per-node α refinement for the branch-and-bound: evaluates
    /// the inherited (parent-tuned) slope vector under this node's
    /// phases, then tries at most `flips` single-coordinate `{0, 1}`
    /// flips on the widest still-unstable neurons, keeping strict
    /// improvements — one fixed phase barely moves the optimal slopes,
    /// so a couple of flips recover most of a full descent at a fraction
    /// of its cost. Returns the best α-analysis found together with the
    /// refined vector (cloned from scratch; the scratch itself is
    /// reused across calls).
    ///
    /// The result is a *second* sound bound alongside the heuristic
    /// analysis — callers take the min; the α analysis never drives
    /// branching, so enabling it can only shrink the search tree.
    ///
    /// # Errors
    ///
    /// As [`analyze_with_alpha`].
    ///
    /// [`analyze_with_alpha`]: PhaseAnalyzer::analyze_with_alpha
    pub fn refine_alpha(
        &mut self,
        phases: &Phases,
        objective: &LinearObjective,
        warm: &[f64],
        flips: usize,
    ) -> Result<(PhasedAnalysis, Vec<f64>), VerifyError> {
        let total_relu = self.net.num_relu_neurons();
        if warm.len() < total_relu {
            return Err(VerifyError::SpecMismatch {
                network_inputs: total_relu,
                spec_inputs: warm.len(),
            });
        }
        let mut alpha = std::mem::take(&mut self.alpha_scratch);
        alpha.clear();
        alpha.extend_from_slice(&warm[..total_relu]);
        let mut best = match self.analyze_impl(phases, objective, Some(&alpha), None) {
            Ok(a) => a,
            Err(e) => {
                self.alpha_scratch = alpha;
                return Err(e);
            }
        };
        if !best.conflict && flips > 0 {
            // Widest unstable neurons first: they carry the loosest
            // triangle relaxations, so their slope matters most.
            // Top-`flips` selection without sorting the whole list:
            // `flips` is small (1–2 at the shipped defaults).
            let mut coords = std::mem::take(&mut self.coord_scratch);
            coords.clear();
            for _ in 0..flips.min(best.unstable.len()) {
                let next = best
                    .unstable
                    .iter()
                    .filter(|&&(f, _)| !coords.contains(&f))
                    .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|&(f, _)| f);
                match next {
                    Some(f) => coords.push(f),
                    None => break,
                }
            }
            for i in 0..coords.len() {
                let f = coords[i];
                let old = alpha[f];
                alpha[f] = if old >= 0.5 { 0.0 } else { 1.0 };
                match self.analyze_impl(phases, objective, Some(&alpha), None) {
                    Ok(cand) => {
                        if cand.objective_upper < best.objective_upper - 1e-12 {
                            best = cand;
                            if best.conflict {
                                break;
                            }
                        } else {
                            alpha[f] = old;
                        }
                    }
                    Err(e) => {
                        self.alpha_scratch = alpha;
                        self.coord_scratch = coords;
                        return Err(e);
                    }
                }
            }
            self.coord_scratch = coords;
        }
        let out = alpha.clone();
        self.alpha_scratch = alpha;
        Ok((best, out))
    }

    /// Inner descent loop of [`analyze_tuned`], operating on caller-owned
    /// scratch so the buffers survive the early `?` returns.
    ///
    /// [`analyze_tuned`]: PhaseAnalyzer::analyze_tuned
    fn tune_alpha(
        &mut self,
        phases: &Phases,
        objective: &LinearObjective,
        iters: usize,
        warm: Option<&[f64]>,
        alpha: &mut Vec<f64>,
        coords: &mut Vec<usize>,
    ) -> Result<PhasedAnalysis, VerifyError> {
        let total_relu = self.net.num_relu_neurons();
        // Baseline: heuristic slopes, captured into `alpha` so descent
        // starts from the heuristic vertex.
        let mut best = self.analyze_impl(phases, objective, None, Some(alpha))?;
        if let Some(w) = warm {
            if w.len() == total_relu && !best.conflict {
                let cand = self.analyze_impl(phases, objective, Some(w), None)?;
                if cand.objective_upper < best.objective_upper {
                    best = cand;
                    alpha.copy_from_slice(w);
                }
            }
        }
        if best.conflict {
            // −∞ cannot be improved; skip the descent entirely.
            return Ok(best);
        }
        for _ in 0..iters {
            coords.clear();
            coords.extend(best.unstable.iter().map(|&(f, _)| f));
            let mut improved = false;
            for &f in coords.iter() {
                let old = alpha[f];
                alpha[f] = if old >= 0.5 { 0.0 } else { 1.0 };
                let cand = self.analyze_impl(phases, objective, Some(alpha), None)?;
                if cand.objective_upper < best.objective_upper - 1e-12 {
                    best = cand;
                    improved = true;
                    if best.conflict {
                        return Ok(best);
                    }
                } else {
                    alpha[f] = old;
                }
            }
            if !improved {
                break;
            }
        }
        Ok(best)
    }
}

/// One-shot convenience wrapper over [`PhaseAnalyzer`]; see there for the
/// semantics. Callers analysing many phase assignments of the same
/// `(network, box)` pair should hold a [`PhaseAnalyzer`] instead to
/// amortise its buffers.
///
/// # Errors
///
/// Returns [`VerifyError::SpecMismatch`] for a wrong box width or a
/// non-empty `phases` shorter than the network's ReLU neuron count, and
/// [`VerifyError::NotPiecewiseLinear`] for non-ReLU/identity layers.
pub fn analyze_with_phases(
    net: &Network,
    input_box: &[Interval],
    phases: &Phases,
    objective: &LinearObjective,
) -> Result<PhasedAnalysis, VerifyError> {
    PhaseAnalyzer::new(net, input_box)?.analyze(phases, objective)
}

/// DeepPoly/CROWN-style symbolic bound propagation (no phase forcing).
///
/// # Errors
///
/// Returns [`VerifyError::SpecMismatch`] for a wrong box width and
/// [`VerifyError::NotPiecewiseLinear`] if a layer uses an activation other
/// than ReLU or identity.
pub fn symbolic_bounds(net: &Network, input_box: &[Interval]) -> Result<NetworkBounds, VerifyError> {
    let trivial = LinearObjective {
        terms: Vec::new(),
        constant: 0.0,
    };
    Ok(analyze_with_phases(net, input_box, &[], &trivial)?.bounds)
}

/// Intersects `acc` with `other` neuron-by-neuron. Both operands must be
/// individually sound for the same network and box, so the intersection
/// is sound and at least as tight as either. Floating-point-empty
/// intersections (possible only through rounding, never semantically)
/// keep the accumulator's interval.
fn intersect_bounds(acc: &mut NetworkBounds, other: &NetworkBounds) {
    let pairs = acc
        .pre
        .iter_mut()
        .zip(&other.pre)
        .chain(acc.post.iter_mut().zip(&other.post));
    for (al, ol) in pairs {
        for (a, o) in al.iter_mut().zip(ol) {
            *a = a.intersect(o).unwrap_or(*a);
        }
    }
}

/// α-optimized whole-network bounds for the MILP encoder.
///
/// Runs the same `{0, 1}` coordinate descent as
/// [`PhaseAnalyzer::analyze_tuned`], but scores candidates by what the
/// encoder cares about — `(unstable neuron count, total unstable width)`,
/// lexicographically — instead of a single objective bound, and returns
/// the *intersection* of every sound candidate evaluated along the way.
/// Each candidate's bounds are sound for any α ∈ [0, 1], so the
/// intersection is sound and never looser than the heuristic slopes:
/// more neurons come out stably fixed (fewer binaries) and the remaining
/// big-M constants shrink.
///
/// `iters == 0` is exactly [`symbolic_bounds`].
///
/// # Errors
///
/// As [`symbolic_bounds`].
pub fn alpha_optimized_bounds(
    net: &Network,
    input_box: &[Interval],
    iters: usize,
) -> Result<NetworkBounds, VerifyError> {
    let trivial = LinearObjective {
        terms: Vec::new(),
        constant: 0.0,
    };
    let mut analyzer = PhaseAnalyzer::new(net, input_box)?;
    if iters == 0 {
        return Ok(analyzer.analyze(&[], &trivial)?.bounds);
    }
    let total_relu = net.num_relu_neurons();
    let mut alpha = vec![0.0; total_relu];
    let mut best = analyzer.analyze_impl(&[], &trivial, None, Some(&mut alpha))?;
    let mut acc = best.bounds.clone();
    fn score(a: &PhasedAnalysis) -> (usize, f64) {
        (
            a.unstable.len(),
            a.unstable.iter().map(|&(_, w)| w).sum::<f64>(),
        )
    }
    let mut best_score = score(&best);
    for _ in 0..iters {
        let mut improved = false;
        let coords: Vec<usize> = best.unstable.iter().map(|&(f, _)| f).collect();
        for f in coords {
            let old = alpha[f];
            alpha[f] = if old >= 0.5 { 0.0 } else { 1.0 };
            let cand = analyzer.analyze_impl(&[], &trivial, Some(&alpha), None)?;
            intersect_bounds(&mut acc, &cand.bounds);
            let s = score(&cand);
            if s.0 < best_score.0 || (s.0 == best_score.0 && s.1 < best_score.1 - 1e-12) {
                best_score = s;
                best = cand;
                improved = true;
            } else {
                alpha[f] = old;
            }
        }
        if !improved {
            break;
        }
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use certnn_linalg::Vector;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn unit_box(n: usize) -> Vec<Interval> {
        vec![Interval::new(-1.0, 1.0); n]
    }

    /// Samples inputs in the box and asserts all traces are inside bounds.
    fn assert_sound(net: &Network, input_box: &[Interval], nb: &NetworkBounds, samples: usize) {
        let mut rng = StdRng::seed_from_u64(12345);
        for _ in 0..samples {
            let x: Vector = input_box
                .iter()
                .map(|iv| rng.gen_range(iv.lo()..=iv.hi()))
                .collect();
            let trace = net.forward_trace(&x).unwrap();
            for (l, (z, a)) in trace
                .pre_activations
                .iter()
                .zip(&trace.activations)
                .enumerate()
            {
                for j in 0..z.len() {
                    assert!(
                        nb.pre[l][j].widened(1e-9).contains(z[j]),
                        "pre[{l}][{j}] = {} outside {}",
                        z[j],
                        nb.pre[l][j]
                    );
                    assert!(
                        nb.post[l][j].widened(1e-9).contains(a[j]),
                        "post[{l}][{j}] = {} outside {}",
                        a[j],
                        nb.post[l][j]
                    );
                }
            }
        }
    }

    #[test]
    fn interval_bounds_sound_on_random_networks() {
        for seed in 0..5 {
            let net = Network::relu_mlp(4, &[8, 8], 3, seed).unwrap();
            let ib = unit_box(4);
            let nb = interval_bounds(&net, &ib).unwrap();
            assert_sound(&net, &ib, &nb, 100);
        }
    }

    #[test]
    fn symbolic_bounds_sound_on_random_networks() {
        for seed in 0..5 {
            let net = Network::relu_mlp(4, &[8, 8], 3, seed).unwrap();
            let ib = unit_box(4);
            let nb = symbolic_bounds(&net, &ib).unwrap();
            assert_sound(&net, &ib, &nb, 100);
        }
    }

    #[test]
    fn symbolic_never_looser_than_interval() {
        for seed in 0..5 {
            let net = Network::relu_mlp(6, &[10, 10, 10], 2, seed + 50).unwrap();
            let ib = unit_box(6);
            let ibp = interval_bounds(&net, &ib).unwrap();
            let sym = symbolic_bounds(&net, &ib).unwrap();
            assert!(
                sym.total_pre_width() <= ibp.total_pre_width() + 1e-9,
                "symbolic {} vs interval {}",
                sym.total_pre_width(),
                ibp.total_pre_width()
            );
        }
    }

    #[test]
    fn symbolic_strictly_tighter_on_deep_network() {
        // On a narrow (local-robustness style) box, IBP's dependency loss
        // compounds across layers; symbolic bounds must win by a clear
        // margin. (On very wide boxes nearly every neuron is unstable with
        // a slope near 1, and the two methods converge.)
        let net = Network::relu_mlp(4, &[16, 16, 16, 16], 1, 3).unwrap();
        let ib = vec![Interval::new(0.2, 0.4); 4];
        let ibp = interval_bounds(&net, &ib).unwrap();
        let sym = symbolic_bounds(&net, &ib).unwrap();
        assert!(
            sym.total_pre_width() < 0.5 * ibp.total_pre_width(),
            "symbolic {} not clearly tighter than interval {}",
            sym.total_pre_width(),
            ibp.total_pre_width()
        );
    }

    #[test]
    fn exact_on_pure_affine_network() {
        // Identity activations: both analyses are exact and equal.
        use certnn_nn::layer::DenseLayer;
        let l = DenseLayer::new(
            Matrix::from_rows(&[&[2.0, -1.0]]).unwrap(),
            Vector::from(vec![0.5]),
            Activation::Identity,
        )
        .unwrap();
        let net = Network::new(vec![l]).unwrap();
        let ib = vec![Interval::new(0.0, 1.0), Interval::new(-2.0, 2.0)];
        let nb_i = interval_bounds(&net, &ib).unwrap();
        let nb_s = symbolic_bounds(&net, &ib).unwrap();
        // z = 2x0 - x1 + 0.5 over the box: [0-2+0.5, 2+2+0.5] = [-1.5, 4.5].
        assert!((nb_i.pre[0][0].lo() + 1.5).abs() < 1e-12);
        assert!((nb_i.pre[0][0].hi() - 4.5).abs() < 1e-12);
        assert_eq!(nb_i.pre[0][0], nb_s.pre[0][0]);
    }

    #[test]
    fn stable_neuron_counting() {
        use certnn_nn::layer::DenseLayer;
        // One neuron always active (bias 10), one always off (bias -10),
        // one unstable (bias 0).
        let l1 = DenseLayer::new(
            Matrix::from_rows(&[&[1.0], &[1.0], &[1.0]]).unwrap(),
            Vector::from(vec![10.0, -10.0, 0.0]),
            Activation::Relu,
        )
        .unwrap();
        let l2 = DenseLayer::new(
            Matrix::from_rows(&[&[1.0, 1.0, 1.0]]).unwrap(),
            Vector::zeros(1),
            Activation::Identity,
        )
        .unwrap();
        let net = Network::new(vec![l1, l2]).unwrap();
        let nb = interval_bounds(&net, &unit_box(1)).unwrap();
        assert_eq!(nb.count_unstable(&net), 1);
    }

    #[test]
    fn wrong_box_width_rejected() {
        let net = Network::relu_mlp(4, &[4], 1, 0).unwrap();
        assert!(matches!(
            interval_bounds(&net, &unit_box(3)),
            Err(VerifyError::SpecMismatch { .. })
        ));
        assert!(symbolic_bounds(&net, &unit_box(5)).is_err());
    }

    #[test]
    fn tanh_rejected_by_symbolic_allowed_by_interval() {
        use certnn_nn::layer::DenseLayer;
        let l = DenseLayer::new(
            Matrix::identity(2),
            Vector::zeros(2),
            Activation::Tanh,
        )
        .unwrap();
        let net = Network::new(vec![l]).unwrap();
        assert!(interval_bounds(&net, &unit_box(2)).is_ok());
        assert!(matches!(
            symbolic_bounds(&net, &unit_box(2)),
            Err(VerifyError::NotPiecewiseLinear { layer: 0 })
        ));
    }

    #[test]
    fn output_bounds_accessor() {
        let net = Network::relu_mlp(3, &[5], 2, 1).unwrap();
        let nb = interval_bounds(&net, &unit_box(3)).unwrap();
        assert_eq!(nb.output_bounds().len(), 2);
    }

    // --- phase-aware analysis ---

    use certnn_nn::layer::DenseLayer;

    /// f(x) = relu(x): one unstable neuron over [-1, 1].
    fn single_relu() -> Network {
        let l1 = DenseLayer::new(
            Matrix::from_rows(&[&[1.0]]).unwrap(),
            Vector::zeros(1),
            Activation::Relu,
        )
        .unwrap();
        let l2 = DenseLayer::new(
            Matrix::from_rows(&[&[1.0]]).unwrap(),
            Vector::zeros(1),
            Activation::Identity,
        )
        .unwrap();
        Network::new(vec![l1, l2]).unwrap()
    }

    #[test]
    fn phase_free_analysis_matches_symbolic_bounds() {
        let net = Network::relu_mlp(3, &[6, 6], 2, 4).unwrap();
        let ib = unit_box(3);
        let sym = symbolic_bounds(&net, &ib).unwrap();
        let obj = LinearObjective::output(0);
        let an = analyze_with_phases(&net, &ib, &[], &obj).unwrap();
        assert_eq!(an.bounds, sym);
        assert!(!an.conflict);
        assert_eq!(an.unstable.len(), an.bounds.count_unstable(&net));
    }

    #[test]
    fn reused_analyzer_matches_fresh_calls() {
        // The buffer-reusing analyzer must be bit-identical to the
        // allocate-per-call path across an interleaved sequence of
        // phase-free and phase-forced queries.
        let net = Network::relu_mlp(3, &[7, 5], 2, 21).unwrap();
        let ib = unit_box(3);
        let obj = LinearObjective::output(1);
        let n = net.num_relu_neurons();
        let mut analyzer = PhaseAnalyzer::new(&net, &ib).unwrap();
        let mut phase_sets: Vec<Vec<Option<bool>>> = vec![Vec::new(), vec![None; n]];
        for flat in 0..n.min(4) {
            let mut p = vec![None; n];
            p[flat] = Some(flat % 2 == 0);
            phase_sets.push(p);
        }
        // Interleave and repeat so stale buffer contents would surface.
        for phases in phase_sets.iter().chain(phase_sets.iter().rev()) {
            let reused = analyzer.analyze(phases, &obj).unwrap();
            let fresh = analyze_with_phases(&net, &ib, phases, &obj).unwrap();
            assert_eq!(reused.bounds, fresh.bounds);
            assert_eq!(reused.objective_upper, fresh.objective_upper);
            assert_eq!(reused.maximizer, fresh.maximizer);
            assert_eq!(reused.conflict, fresh.conflict);
            assert_eq!(reused.unstable, fresh.unstable);
        }
    }

    #[test]
    fn objective_upper_dominates_true_maximum() {
        let net = Network::relu_mlp(3, &[8, 8], 1, 13).unwrap();
        let ib = unit_box(3);
        let obj = LinearObjective::output(0);
        let an = analyze_with_phases(&net, &ib, &[], &obj).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..500 {
            let x: Vector = (0..3).map(|_| rng.gen_range(-1.0..=1.0)).collect();
            let v = net.forward(&x).unwrap()[0];
            assert!(v <= an.objective_upper + 1e-9);
        }
        // The maximizer is a genuine point in the box.
        assert!(an.maximizer.iter().all(|&x| (-1.0..=1.0).contains(&x)));
        let achieved = net.forward(&an.maximizer).unwrap()[0];
        assert!(achieved <= an.objective_upper + 1e-9);
    }

    #[test]
    fn forcing_phases_resolves_single_relu_exactly() {
        let net = single_relu();
        let ib = unit_box(1);
        let obj = LinearObjective::output(0);
        // Active branch: y = z over [0, 1] -> upper 1.
        let active = analyze_with_phases(&net, &ib, &[Some(true)], &obj).unwrap();
        assert!(!active.conflict);
        assert!((active.objective_upper - 1.0).abs() < 1e-9);
        assert!(active.unstable.is_empty());
        // Inactive branch: y = 0 -> upper 0.
        let inactive = analyze_with_phases(&net, &ib, &[Some(false)], &obj).unwrap();
        assert!(!inactive.conflict);
        assert!(inactive.objective_upper.abs() < 1e-9);
    }

    #[test]
    fn branch_bounds_cover_their_phase_regions() {
        // Soundness of phase forcing: every sampled input whose true
        // phase for the branched neuron is `p` must score below the
        // bound of the branch `p` — this is the invariant neuron
        // branch-and-bound relies on.
        for seed in [77u64, 78, 79] {
            let net = Network::relu_mlp(3, &[6, 6], 1, seed).unwrap();
            let ib = unit_box(3);
            let obj = LinearObjective::output(0);
            let relaxed = analyze_with_phases(&net, &ib, &[], &obj).unwrap();
            if relaxed.unstable.is_empty() {
                continue;
            }
            let flat = relaxed.unstable[0].0;
            let mut bounds = [0.0f64; 2];
            let mut phases = vec![None; net.num_relu_neurons()];
            for (k, val) in [false, true].into_iter().enumerate() {
                phases[flat] = Some(val);
                bounds[k] = analyze_with_phases(&net, &ib, &phases, &obj)
                    .unwrap()
                    .objective_upper;
            }
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..300 {
                let x: Vector = (0..3).map(|_| rng.gen_range(-1.0..=1.0)).collect();
                let trace = net.forward_trace(&x).unwrap();
                let sig = {
                    // Flat layer-major ReLU index `flat` within the trace.
                    let mut idx = flat;
                    let mut found = f64::NAN;
                    for (layer, z) in net.layers().iter().zip(&trace.pre_activations) {
                        if layer.activation() != Activation::Relu {
                            continue;
                        }
                        if idx < z.len() {
                            found = z[idx];
                            break;
                        }
                        idx -= z.len();
                    }
                    found
                };
                let region = usize::from(sig > 0.0);
                let v = trace.output()[0];
                assert!(
                    v <= bounds[region] + 1e-7,
                    "seed {seed}: value {v} exceeds branch-{region} bound {}",
                    bounds[region]
                );
            }
        }
    }

    #[test]
    fn impossible_phase_is_a_conflict() {
        use certnn_nn::layer::DenseLayer;
        // Neuron pre-activation is always >= 9 on the box; forcing it
        // inactive is contradictory.
        let l1 = DenseLayer::new(
            Matrix::from_rows(&[&[1.0]]).unwrap(),
            Vector::from(vec![10.0]),
            Activation::Relu,
        )
        .unwrap();
        let l2 = DenseLayer::new(
            Matrix::from_rows(&[&[1.0]]).unwrap(),
            Vector::zeros(1),
            Activation::Identity,
        )
        .unwrap();
        let net = Network::new(vec![l1, l2]).unwrap();
        let obj = LinearObjective::output(0);
        let an = analyze_with_phases(&net, &unit_box(1), &[Some(false)], &obj).unwrap();
        assert!(an.conflict);
        assert_eq!(an.objective_upper, f64::NEG_INFINITY);
    }

    #[test]
    fn short_phase_vector_rejected() {
        let net = Network::relu_mlp(2, &[4], 1, 0).unwrap();
        let obj = LinearObjective::output(0);
        assert!(analyze_with_phases(&net, &unit_box(2), &[None], &obj).is_err());
    }

    // --- α-optimized bounding ---

    use proptest::prelude::*;

    #[test]
    fn analyze_tuned_zero_iters_is_bit_identical_to_analyze() {
        // The `alpha_iters = 0` off switch must reproduce the heuristic
        // path exactly — same bits, no α vector.
        for seed in 0..4 {
            let net = Network::relu_mlp(3, &[7, 6], 2, seed).unwrap();
            let ib = unit_box(3);
            let obj = LinearObjective::output(0);
            let mut analyzer = PhaseAnalyzer::new(&net, &ib).unwrap();
            let plain = analyzer.analyze(&[], &obj).unwrap();
            let (tuned, alpha) = analyzer.analyze_tuned(&[], &obj, 0, None).unwrap();
            assert!(alpha.is_none());
            assert_eq!(plain.bounds, tuned.bounds);
            assert_eq!(
                plain.objective_upper.to_bits(),
                tuned.objective_upper.to_bits()
            );
            assert_eq!(plain.unstable, tuned.unstable);
        }
    }

    #[test]
    fn short_alpha_vector_rejected() {
        let net = Network::relu_mlp(2, &[4], 1, 0).unwrap();
        let obj = LinearObjective::output(0);
        let ib = unit_box(2);
        let mut analyzer = PhaseAnalyzer::new(&net, &ib).unwrap();
        assert!(analyzer.analyze_with_alpha(&[], &obj, &[0.5]).is_err());
    }

    #[test]
    fn tuned_alpha_never_looser_and_warm_start_adopted() {
        for seed in 0..6 {
            let net = Network::relu_mlp(4, &[10, 10], 1, seed + 200).unwrap();
            let ib = unit_box(4);
            let obj = LinearObjective::output(0);
            let mut analyzer = PhaseAnalyzer::new(&net, &ib).unwrap();
            let heuristic = analyzer.analyze(&[], &obj).unwrap();
            let (tuned, alpha) = analyzer.analyze_tuned(&[], &obj, 3, None).unwrap();
            assert!(
                tuned.objective_upper <= heuristic.objective_upper,
                "seed {seed}: tuned {} looser than heuristic {}",
                tuned.objective_upper,
                heuristic.objective_upper
            );
            // Replaying the returned α must reproduce the tuned bound,
            // and feeding it back as a warm start can't end looser.
            let alpha = alpha.expect("iters > 0 returns an alpha vector");
            let replay = analyzer.analyze_with_alpha(&[], &obj, &alpha).unwrap();
            assert_eq!(
                replay.objective_upper.to_bits(),
                tuned.objective_upper.to_bits()
            );
            let (rewarm, _) = analyzer
                .analyze_tuned(&[], &obj, 1, Some(&alpha))
                .unwrap();
            assert!(rewarm.objective_upper <= tuned.objective_upper + 1e-12);
        }
    }

    #[test]
    fn alpha_optimized_bounds_sound_and_never_looser_than_symbolic() {
        for seed in 0..5 {
            let net = Network::relu_mlp(4, &[9, 9], 2, seed + 400).unwrap();
            let ib = unit_box(4);
            let sym = symbolic_bounds(&net, &ib).unwrap();
            let opt = alpha_optimized_bounds(&net, &ib, 3).unwrap();
            assert_sound(&net, &ib, &opt, 100);
            assert!(
                opt.total_pre_width() <= sym.total_pre_width() + 1e-9,
                "seed {seed}: optimized {} vs symbolic {}",
                opt.total_pre_width(),
                sym.total_pre_width()
            );
            // Zero iterations is exactly the symbolic path.
            let off = alpha_optimized_bounds(&net, &ib, 0).unwrap();
            assert_eq!(off, sym);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn random_alpha_bounds_are_sound(
            seed in 0u64..500,
            raw_alpha in prop::collection::vec(-0.5f64..1.5, 32),
        ) {
            // Any α (clamped into [0, 1] internally) must yield bounds
            // that dominate sampled forward passes and an objective
            // bound above every sampled output.
            let net = Network::relu_mlp(3, &[8, 8], 1, seed).unwrap();
            let ib = unit_box(3);
            let obj = LinearObjective::output(0);
            let n = net.num_relu_neurons();
            prop_assume!(raw_alpha.len() >= n);
            let mut analyzer = PhaseAnalyzer::new(&net, &ib).unwrap();
            let an = analyzer.analyze_with_alpha(&[], &obj, &raw_alpha[..n]).unwrap();
            assert_sound(&net, &ib, &an.bounds, 60);
            let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
            for _ in 0..60 {
                let x: Vector = (0..3).map(|_| rng.gen_range(-1.0..=1.0)).collect();
                let v = net.forward(&x).unwrap()[0];
                prop_assert!(
                    v <= an.objective_upper + 1e-9,
                    "output {v} exceeds α-bound {}",
                    an.objective_upper
                );
            }
        }

        #[test]
        fn tuned_never_looser_than_heuristic_under_random_phases(
            seed in 0u64..500,
            flips in prop::collection::vec(0u8..3, 4),
        ) {
            // With a few neurons phase-forced (as B&B nodes do), tuning
            // still never loses to the heuristic and stays sound on the
            // inputs that realise those phases.
            let net = Network::relu_mlp(3, &[6, 6], 1, seed + 1000).unwrap();
            let ib = unit_box(3);
            let obj = LinearObjective::output(0);
            let n = net.num_relu_neurons();
            let mut phases = vec![None; n];
            for (k, f) in flips.iter().enumerate() {
                // 0 = free, 1 = forced inactive, 2 = forced active.
                phases[k * (n / 4).max(1) % n] = match f {
                    0 => None,
                    1 => Some(false),
                    _ => Some(true),
                };
            }
            let mut analyzer = PhaseAnalyzer::new(&net, &ib).unwrap();
            let heuristic = analyzer.analyze(&phases, &obj).unwrap();
            let (tuned, _) = analyzer.analyze_tuned(&phases, &obj, 2, None).unwrap();
            prop_assert!(tuned.objective_upper <= heuristic.objective_upper);
            // A heuristic conflict short-circuits descent, so it must
            // survive; tuning may additionally *discover* conflicts the
            // heuristic missed (tighter α, same sound semantics).
            if heuristic.conflict {
                prop_assert!(tuned.conflict);
            }
        }
    }
}
