//! Big-M MILP encoding of piecewise-linear networks.
//!
//! Following Cheng et al. (ATVA 2017), each layer's affine map becomes a
//! set of equality rows and each ReLU neuron becomes either
//!
//! * a **linear** constraint when bound propagation proves it stable
//!   (always active: `y = z`; always inactive: `y = 0`), or
//! * the classic **big-M** gadget with one binary `a`:
//!
//!   ```text
//!   y ≥ 0          (variable bound)
//!   y ≥ z
//!   y ≤ z − lo·(1 − a)
//!   y ≤ hi·a
//!   ```
//!
//!   where `[lo, hi]` is the neuron's proven pre-activation interval. At
//!   `a = 1` the gadget forces `y = z` (active); at `a = 0` it forces
//!   `y = 0` and `z ≤ 0` (inactive) — an exact encoding of `y = max(0, z)`.
//!
//! The encoding is *exact*: every feasible MILP point corresponds to a
//! real forward pass, so the MILP optimum is the true network maximum.

use crate::bounds::{alpha_optimized_bounds, interval_bounds, symbolic_bounds, NetworkBounds};
use crate::property::{InputSpec, Relation};
use crate::VerifyError;
use certnn_lp::{RowKind, Sense, VarId};
use certnn_milp::MilpModel;
use certnn_nn::activation::Activation;
use certnn_nn::network::Network;

/// Bound-propagation method used to pre-solve neuron stability and big-M
/// constants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BoundMethod {
    /// Plain interval arithmetic — cheapest, loosest.
    Interval,
    /// DeepPoly/CROWN-style symbolic bounds — tighter, still fast.
    #[default]
    Symbolic,
    /// Symbolic bounds with α-optimized unstable-ReLU lower slopes
    /// ([`alpha_optimized_bounds`]): `iters` rounds of coordinate
    /// descent, intersecting every sound candidate. Tightest; costs
    /// `O(iters · unstable)` extra propagations at encode time.
    /// `iters == 0` is identical to [`BoundMethod::Symbolic`].
    AlphaOptimized {
        /// Coordinate-descent rounds.
        iters: usize,
    },
}

/// Margin added to all propagated bounds before they become big-M
/// constants, absorbing f64 round-off in the propagation itself.
const BOUND_MARGIN: f64 = 1e-6;

/// Per-activation bookkeeping: either a model variable or a constant zero
/// (stable-off neurons need no variable at all).
#[derive(Debug, Clone, Copy, PartialEq)]
enum Act {
    Var(VarId),
    Zero,
}

/// Statistics of an encoding — the quantities that predict MILP hardness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EncodingStats {
    /// Binary variables (= unstable ReLU neurons).
    pub binaries: usize,
    /// Neurons proven always-active.
    pub stable_on: usize,
    /// Neurons proven always-inactive.
    pub stable_off: usize,
    /// Constraint rows.
    pub rows: usize,
}

/// The MILP encoding of a network under an input specification.
#[derive(Debug, Clone)]
pub struct Encoding {
    /// The assembled model (maximisation sense, objective unset).
    pub milp: MilpModel,
    /// Variables holding the network inputs, feature order.
    pub input_vars: Vec<VarId>,
    /// Variables holding the network outputs, output order.
    pub output_vars: Vec<VarId>,
    /// Hardness statistics.
    pub stats: EncodingStats,
    /// The bounds used for stability analysis and big-M constants.
    pub bounds: NetworkBounds,
    /// For every ReLU neuron (flat layer-major order): its binary
    /// variable, or `None` if presolve proved the neuron stable. Used by
    /// the neuron branch-and-bound's sub-MILP fallback to fix phases.
    pub relu_binaries: Vec<Option<VarId>>,
    /// Pre-activation variable of every neuron, per layer. The neuron
    /// branch-and-bound tightens these variables' bounds per node.
    pub z_vars: Vec<Vec<VarId>>,
    /// Post-activation variable of every *unstable* ReLU neuron (flat
    /// layer-major order), `None` for stable neurons.
    pub y_vars: Vec<Option<VarId>>,
}

/// Encodes `net` over `spec` using `method` for the presolve bounds.
///
/// # Errors
///
/// Returns [`VerifyError::SpecMismatch`] if the spec width differs from
/// the network inputs, and [`VerifyError::NotPiecewiseLinear`] if a layer
/// activation is not ReLU/identity.
pub fn encode(
    net: &Network,
    spec: &InputSpec,
    method: BoundMethod,
) -> Result<Encoding, VerifyError> {
    if spec.num_inputs() != net.inputs() {
        return Err(VerifyError::SpecMismatch {
            network_inputs: net.inputs(),
            spec_inputs: spec.num_inputs(),
        });
    }
    for (li, layer) in net.layers().iter().enumerate() {
        if !layer.activation().is_piecewise_linear() {
            return Err(VerifyError::NotPiecewiseLinear { layer: li });
        }
    }
    let bounds = match method {
        BoundMethod::Interval => interval_bounds(net, spec.bounds())?,
        BoundMethod::Symbolic => symbolic_bounds(net, spec.bounds())?,
        BoundMethod::AlphaOptimized { iters } => alpha_optimized_bounds(net, spec.bounds(), iters)?,
    };

    let mut milp = MilpModel::new(Sense::Maximize);
    let mut stats = EncodingStats::default();

    // Input variables with the spec's box bounds.
    let input_vars: Vec<VarId> = spec
        .bounds()
        .iter()
        .enumerate()
        .map(|(i, iv)| milp.add_var(&format!("x{i}"), iv.lo(), iv.hi()))
        .collect();

    // Scenario constraints.
    for (ci, c) in spec.constraints().iter().enumerate() {
        let coeffs: Vec<(VarId, f64)> = c
            .terms
            .iter()
            .map(|&(idx, coef)| (input_vars[idx], coef))
            .collect();
        let kind = match c.relation {
            Relation::Le => RowKind::Le,
            Relation::Eq => RowKind::Eq,
            Relation::Ge => RowKind::Ge,
        };
        milp.add_row(&format!("scenario{ci}"), &coeffs, kind, c.rhs)
            .map_err(certnn_milp::MilpError::from)?;
        stats.rows += 1;
    }

    // Layers.
    let mut prev: Vec<Act> = input_vars.iter().map(|&v| Act::Var(v)).collect();
    let mut output_vars: Vec<VarId> = Vec::new();
    let mut relu_binaries: Vec<Option<VarId>> = Vec::new();
    let mut z_vars: Vec<Vec<VarId>> = Vec::new();
    let mut y_vars: Vec<Option<VarId>> = Vec::new();
    for (li, layer) in net.layers().iter().enumerate() {
        let w = layer.weights();
        let b = layer.bias();
        let mut next: Vec<Act> = Vec::with_capacity(layer.outputs());
        let mut layer_z: Vec<VarId> = Vec::with_capacity(layer.outputs());
        for j in 0..layer.outputs() {
            let z_iv = bounds.pre[li][j].widened(BOUND_MARGIN);
            let (z_lo, z_hi) = (z_iv.lo(), z_iv.hi());

            // Pre-activation variable and its defining equality.
            let z = milp.add_var(&format!("z{li}_{j}"), z_lo, z_hi);
            layer_z.push(z);
            let mut row: Vec<(VarId, f64)> = vec![(z, -1.0)];
            for (k, act) in prev.iter().enumerate() {
                if let Act::Var(v) = act {
                    let coef = w[(j, k)];
                    if coef != 0.0 {
                        row.push((*v, coef));
                    }
                }
            }
            milp.add_row(&format!("def_z{li}_{j}"), &row, RowKind::Eq, -b[j])
                .map_err(certnn_milp::MilpError::from)?;
            stats.rows += 1;

            match layer.activation() {
                Activation::Identity => next.push(Act::Var(z)),
                Activation::Relu => {
                    if z_hi <= 0.0 {
                        stats.stable_off += 1;
                        relu_binaries.push(None);
                        y_vars.push(None);
                        next.push(Act::Zero);
                    } else if z_lo >= 0.0 {
                        stats.stable_on += 1;
                        relu_binaries.push(None);
                        y_vars.push(None);
                        next.push(Act::Var(z));
                    } else {
                        stats.binaries += 1;
                        let y = milp.add_var(&format!("y{li}_{j}"), 0.0, z_hi);
                        let a = milp.add_binary(&format!("a{li}_{j}"));
                        relu_binaries.push(Some(a));
                        y_vars.push(Some(y));
                        // y ≥ z.
                        milp.add_row(
                            &format!("relu_ge{li}_{j}"),
                            &[(y, 1.0), (z, -1.0)],
                            RowKind::Ge,
                            0.0,
                        )
                        .map_err(certnn_milp::MilpError::from)?;
                        // y ≤ z − lo·(1 − a)  ⇔  y − z − lo·a ≤ −lo.
                        milp.add_row(
                            &format!("relu_le1_{li}_{j}"),
                            &[(y, 1.0), (z, -1.0), (a, -z_lo)],
                            RowKind::Le,
                            -z_lo,
                        )
                        .map_err(certnn_milp::MilpError::from)?;
                        // y ≤ hi·a.
                        milp.add_row(
                            &format!("relu_le2_{li}_{j}"),
                            &[(y, 1.0), (a, -z_hi)],
                            RowKind::Le,
                            0.0,
                        )
                        .map_err(certnn_milp::MilpError::from)?;
                        stats.rows += 3;
                        next.push(Act::Var(y));
                    }
                }
                Activation::Tanh => unreachable!("checked above"),
            }
        }
        z_vars.push(layer_z);
        if li == net.layers().len() - 1 {
            // Materialise constant-zero outputs as fixed variables so the
            // objective can always reference a VarId.
            output_vars = next
                .iter()
                .enumerate()
                .map(|(j, act)| match act {
                    Act::Var(v) => *v,
                    Act::Zero => milp.add_var(&format!("out_zero{j}"), 0.0, 0.0),
                })
                .collect();
        }
        prev = next;
    }

    Ok(Encoding {
        milp,
        input_vars,
        output_vars,
        stats,
        bounds,
        relu_binaries,
        z_vars,
        y_vars,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use certnn_linalg::{Interval, Matrix, Vector};
    use certnn_milp::{BranchAndBound, MilpStatus};
    use certnn_nn::layer::DenseLayer;

    fn relu_net_1d() -> Network {
        // y = relu(x): 1 -> 1 relu -> identity passthrough.
        let l1 = DenseLayer::new(
            Matrix::from_rows(&[&[1.0]]).unwrap(),
            Vector::zeros(1),
            Activation::Relu,
        )
        .unwrap();
        let l2 = DenseLayer::new(
            Matrix::from_rows(&[&[1.0]]).unwrap(),
            Vector::zeros(1),
            Activation::Identity,
        )
        .unwrap();
        Network::new(vec![l1, l2]).unwrap()
    }

    #[test]
    fn relu_max_is_exact() {
        let net = relu_net_1d();
        let spec = InputSpec::from_box(vec![Interval::new(-1.0, 2.0)]).unwrap();
        let enc = encode(&net, &spec, BoundMethod::Symbolic).unwrap();
        assert_eq!(enc.stats.binaries, 1);
        let mut m = enc.milp.clone();
        m.set_objective(&[(enc.output_vars[0], 1.0)]);
        let sol = BranchAndBound::new().solve(&m).unwrap();
        assert_eq!(sol.status, MilpStatus::Optimal);
        assert!((sol.objective.unwrap() - 2.0).abs() < 1e-5);
    }

    #[test]
    fn relu_min_is_zero() {
        let net = relu_net_1d();
        let spec = InputSpec::from_box(vec![Interval::new(-1.0, 2.0)]).unwrap();
        let enc = encode(&net, &spec, BoundMethod::Interval).unwrap();
        let mut m = enc.milp.clone();
        // Minimise by maximising the negation.
        m.set_objective(&[(enc.output_vars[0], -1.0)]);
        let sol = BranchAndBound::new().solve(&m).unwrap();
        assert_eq!(sol.status, MilpStatus::Optimal);
        assert!(sol.objective.unwrap().abs() < 1e-5, "{:?}", sol.objective);
    }

    #[test]
    fn stable_neurons_use_no_binaries() {
        // Bias +10 keeps the neuron active across the whole box.
        let l1 = DenseLayer::new(
            Matrix::from_rows(&[&[1.0]]).unwrap(),
            Vector::from(vec![10.0]),
            Activation::Relu,
        )
        .unwrap();
        let l2 = DenseLayer::new(
            Matrix::from_rows(&[&[1.0]]).unwrap(),
            Vector::zeros(1),
            Activation::Identity,
        )
        .unwrap();
        let net = Network::new(vec![l1, l2]).unwrap();
        let spec = InputSpec::from_box(vec![Interval::new(-1.0, 1.0)]).unwrap();
        let enc = encode(&net, &spec, BoundMethod::Interval).unwrap();
        assert_eq!(enc.stats.binaries, 0);
        assert_eq!(enc.stats.stable_on, 1);
        assert_eq!(enc.milp.num_integers(), 0);
    }

    #[test]
    fn stable_off_neurons_become_constant_zero() {
        let l1 = DenseLayer::new(
            Matrix::from_rows(&[&[1.0]]).unwrap(),
            Vector::from(vec![-10.0]),
            Activation::Relu,
        )
        .unwrap();
        let l2 = DenseLayer::new(
            Matrix::from_rows(&[&[3.0]]).unwrap(),
            Vector::from(vec![0.25]),
            Activation::Identity,
        )
        .unwrap();
        let net = Network::new(vec![l1, l2]).unwrap();
        let spec = InputSpec::from_box(vec![Interval::new(-1.0, 1.0)]).unwrap();
        let enc = encode(&net, &spec, BoundMethod::Interval).unwrap();
        assert_eq!(enc.stats.stable_off, 1);
        let mut m = enc.milp.clone();
        m.set_objective(&[(enc.output_vars[0], 1.0)]);
        let sol = BranchAndBound::new().solve(&m).unwrap();
        // Output is constant 0.25 (zero activation × 3 + bias).
        assert!((sol.objective.unwrap() - 0.25).abs() < 1e-6);
    }

    #[test]
    fn scenario_constraints_enter_the_model() {
        use crate::property::LinearConstraint;
        let net = relu_net_1d();
        let spec = InputSpec::from_box(vec![Interval::new(-1.0, 2.0)])
            .unwrap()
            .constrain(LinearConstraint {
                terms: vec![(0, 1.0)],
                relation: Relation::Le,
                rhs: 0.5,
            });
        let enc = encode(&net, &spec, BoundMethod::Symbolic).unwrap();
        let mut m = enc.milp.clone();
        m.set_objective(&[(enc.output_vars[0], 1.0)]);
        let sol = BranchAndBound::new().solve(&m).unwrap();
        assert!((sol.objective.unwrap() - 0.5).abs() < 1e-5);
    }

    #[test]
    fn spec_width_must_match() {
        let net = relu_net_1d();
        let spec = InputSpec::from_box(vec![Interval::new(0.0, 1.0); 3]).unwrap();
        assert!(matches!(
            encode(&net, &spec, BoundMethod::Interval),
            Err(VerifyError::SpecMismatch { .. })
        ));
    }

    #[test]
    fn tanh_network_rejected() {
        let l = DenseLayer::new(
            Matrix::identity(1),
            Vector::zeros(1),
            Activation::Tanh,
        )
        .unwrap();
        let net = Network::new(vec![l]).unwrap();
        let spec = InputSpec::from_box(vec![Interval::new(0.0, 1.0)]).unwrap();
        assert!(matches!(
            encode(&net, &spec, BoundMethod::Interval),
            Err(VerifyError::NotPiecewiseLinear { layer: 0 })
        ));
    }

    #[test]
    fn feasible_milp_points_decode_to_real_forward_passes() {
        // Solve for the max, then replay the witness through the network:
        // the encoded output variables must equal the real outputs.
        let net = Network::relu_mlp(3, &[6, 6], 2, 77).unwrap();
        let spec = InputSpec::from_box(vec![Interval::new(-1.0, 1.0); 3]).unwrap();
        let enc = encode(&net, &spec, BoundMethod::Symbolic).unwrap();
        let mut m = enc.milp.clone();
        m.set_objective(&[(enc.output_vars[0], 1.0), (enc.output_vars[1], 0.5)]);
        let sol = BranchAndBound::new().solve(&m).unwrap();
        assert_eq!(sol.status, MilpStatus::Optimal);
        let x = sol.x.unwrap();
        let input: Vector = enc.input_vars.iter().map(|v| x[v.index()]).collect();
        let real = net.forward(&input).unwrap();
        for (o, &var) in enc.output_vars.iter().enumerate() {
            assert!(
                (real[o] - x[var.index()]).abs() < 1e-5,
                "output {o}: encoded {} vs real {}",
                x[var.index()],
                real[o]
            );
        }
    }
}
