//! Gradient-based falsification (attack before you verify).
//!
//! Formal verification is expensive; a *falsifier* is cheap. Projected
//! gradient ascent searches the input box for a point pushing the
//! objective above a threshold. If it finds one, the property is refuted
//! with a concrete witness and no MILP/BaB run is needed; if it does not,
//! the complete engines take over. This attack-then-verify architecture
//! is standard in neural-network verification tools, and it sharpens the
//! paper's testing-vs-formal-analysis distinction: the attack is an
//! *incomplete* tester — [`Falsifier::attack`] failing proves nothing.

use crate::property::{InputSpec, LinearObjective};
use crate::VerifyError;
use certnn_linalg::Vector;
use certnn_nn::network::Network;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the projected-gradient falsifier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackConfig {
    /// Random restarts.
    pub restarts: usize,
    /// Gradient-ascent steps per restart.
    pub steps: usize,
    /// Step size relative to each feature's box width.
    pub step_frac: f64,
    /// RNG seed for the restart points.
    pub seed: u64,
}

impl Default for AttackConfig {
    fn default() -> Self {
        Self {
            restarts: 16,
            steps: 60,
            step_frac: 0.12,
            seed: 0,
        }
    }
}

/// Outcome of a falsification attempt.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackResult {
    /// Best objective value found.
    pub best_value: f64,
    /// Input achieving it (always inside the spec's box).
    pub witness: Vector,
    /// Forward/backward passes spent.
    pub evaluations: usize,
}

impl AttackResult {
    /// `true` if the attack exceeds `threshold` — a concrete refutation of
    /// `f ≤ threshold`.
    pub fn refutes(&self, threshold: f64) -> bool {
        self.best_value > threshold
    }
}

/// Projected gradient-ascent falsifier for box specifications.
#[derive(Debug, Clone, Default)]
pub struct Falsifier {
    config: AttackConfig,
}

impl Falsifier {
    /// Creates a falsifier with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a falsifier with explicit settings.
    pub fn with_config(config: AttackConfig) -> Self {
        Self { config }
    }

    /// Maximises `objective` over the spec's box by projected gradient
    /// ascent with random restarts. The result is a *lower* bound on the
    /// true maximum — never a proof.
    ///
    /// Linear scenario constraints are respected by rejection: restart
    /// points violating them are skipped and gradient iterates are kept
    /// only while feasible.
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError::SpecMismatch`] if the spec width differs
    /// from the network input.
    pub fn attack(
        &self,
        net: &Network,
        spec: &InputSpec,
        objective: &LinearObjective,
    ) -> Result<AttackResult, VerifyError> {
        if spec.num_inputs() != net.inputs() {
            return Err(VerifyError::SpecMismatch {
                network_inputs: net.inputs(),
                spec_inputs: spec.num_inputs(),
            });
        }
        objective.check_against(net)?;
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let bounds = spec.bounds();
        let seed_grad: Vector = {
            let mut v = vec![0.0; net.outputs()];
            for &(o, c) in &objective.terms {
                v[o] += c;
            }
            Vector::from(v)
        };

        let mut best: Option<(Vector, f64)> = None;
        let mut evaluations = 0usize;
        for restart in 0..self.config.restarts.max(1) {
            // Restart point: midpoint first, then random corners/points.
            let mut x: Vector = if restart == 0 {
                bounds.iter().map(|iv| iv.midpoint()).collect()
            } else {
                bounds
                    .iter()
                    .map(|iv| {
                        if iv.width() == 0.0 {
                            iv.lo()
                        } else if restart % 3 == 0 {
                            // Corner restarts find vertex optima quickly.
                            if rng.gen_bool(0.5) {
                                iv.lo()
                            } else {
                                iv.hi()
                            }
                        } else {
                            rng.gen_range(iv.lo()..=iv.hi())
                        }
                    })
                    .collect()
            };
            if !spec.contains(&x, 1e-9) {
                continue;
            }
            for _ in 0..self.config.steps {
                let trace = net.forward_trace(&x)?;
                let (_, dx) = net.backward(&trace, &seed_grad)?;
                evaluations += 1;
                let value = objective.eval(trace.output());
                match &best {
                    Some((_, b)) if value <= *b => {}
                    _ => best = Some((x.clone(), value)),
                }
                // Signed step, projected back into the box.
                let mut moved = false;
                let mut next = x.clone();
                for (i, iv) in bounds.iter().enumerate() {
                    if iv.width() == 0.0 {
                        continue;
                    }
                    let step = self.config.step_frac * iv.width() * dx[i].signum();
                    if step != 0.0 {
                        let cand = (next[i] + step).clamp(iv.lo(), iv.hi());
                        if (cand - next[i]).abs() > 1e-15 {
                            next[i] = cand;
                            moved = true;
                        }
                    }
                }
                if !moved || !spec.contains(&next, 1e-9) {
                    break;
                }
                x = next;
            }
            // Evaluate the final iterate too.
            let value = objective.eval(&net.forward(&x)?);
            evaluations += 1;
            match &best {
                Some((_, b)) if value <= *b => {}
                _ => best = Some((x, value)),
            }
        }
        let (witness, best_value) = best.expect("at least the midpoint evaluates");
        Ok(AttackResult {
            best_value,
            witness,
            evaluations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verifier::Verifier;
    use certnn_linalg::Interval;

    fn unit_spec(n: usize) -> InputSpec {
        InputSpec::from_box(vec![Interval::new(-1.0, 1.0); n]).unwrap()
    }

    #[test]
    fn attack_never_exceeds_the_verified_maximum() {
        for seed in [3u64, 7, 11] {
            let net = Network::relu_mlp(4, &[8, 8], 1, seed).unwrap();
            let spec = unit_spec(4);
            let obj = LinearObjective::output(0);
            let exact = Verifier::new()
                .maximize(&net, &spec, &obj)
                .unwrap()
                .exact_max()
                .unwrap();
            let attack = Falsifier::new().attack(&net, &spec, &obj).unwrap();
            assert!(
                attack.best_value <= exact + 1e-6,
                "attack {} beats verified max {exact}",
                attack.best_value
            );
            // A gradient attack with restarts should get close on small nets.
            assert!(
                attack.best_value >= exact - 0.5 * exact.abs().max(1.0),
                "attack {} far below max {exact}",
                attack.best_value
            );
            assert!(spec.contains(&attack.witness, 1e-9));
        }
    }

    #[test]
    fn witness_value_is_reproducible() {
        let net = Network::relu_mlp(3, &[6], 2, 5).unwrap();
        let spec = unit_spec(3);
        let obj = LinearObjective::combination(vec![(0, 1.0), (1, -1.0)]);
        let r = Falsifier::new().attack(&net, &spec, &obj).unwrap();
        let v = obj.eval(&net.forward(&r.witness).unwrap());
        assert!((v - r.best_value).abs() < 1e-12);
        assert!(r.evaluations > 0);
    }

    #[test]
    fn refutation_agrees_with_complete_verification() {
        let net = Network::relu_mlp(4, &[10], 1, 23).unwrap();
        let spec = unit_spec(4);
        let obj = LinearObjective::output(0);
        let exact = Verifier::new()
            .maximize(&net, &spec, &obj)
            .unwrap()
            .exact_max()
            .unwrap();
        let attack = Falsifier::new().attack(&net, &spec, &obj).unwrap();
        // Any threshold the attack refutes must genuinely be violated.
        let t = attack.best_value - 1e-9;
        assert!(attack.refutes(t));
        assert!(exact > t);
    }

    #[test]
    fn degenerate_features_stay_pinned() {
        let spec = InputSpec::from_box(vec![
            Interval::new(-1.0, 1.0),
            Interval::point(0.5),
        ])
        .unwrap();
        let net = Network::relu_mlp(2, &[4], 1, 2).unwrap();
        let obj = LinearObjective::output(0);
        let r = Falsifier::new().attack(&net, &spec, &obj).unwrap();
        assert_eq!(r.witness[1], 0.5);
    }

    #[test]
    fn deterministic_in_seed() {
        let net = Network::relu_mlp(3, &[6], 1, 9).unwrap();
        let spec = unit_spec(3);
        let obj = LinearObjective::output(0);
        let a = Falsifier::new().attack(&net, &spec, &obj).unwrap();
        let b = Falsifier::new().attack(&net, &spec, &obj).unwrap();
        assert_eq!(a, b);
    }
}
