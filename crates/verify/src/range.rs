//! Verified output ranges.
//!
//! Convenience layer over [`crate::verifier::Verifier`]: compute, for
//! every output neuron, a *proven* interval of reachable values over an
//! input specification — the formal counterpart of the empirical min/max
//! statistics a test campaign would report.

use crate::property::{InputSpec, LinearObjective};
use crate::verifier::Verifier;
use crate::VerifyError;
use certnn_linalg::Interval;
use certnn_nn::network::Network;

/// Verified reachable range of one output.
#[derive(Debug, Clone, PartialEq)]
pub struct OutputRange {
    /// Output index.
    pub output: usize,
    /// Verified range; exact endpoints when both queries closed.
    pub range: Interval,
    /// `true` if both the minimisation and maximisation closed exactly.
    pub exact: bool,
}

/// Computes verified ranges for all outputs of `net` over `spec`.
///
/// Each output costs two MILP solves (max and min). For a cheaper but
/// looser answer use [`crate::bounds::symbolic_bounds`] and read
/// [`crate::bounds::NetworkBounds::output_bounds`].
///
/// # Errors
///
/// Returns [`VerifyError`] on malformed inputs.
pub fn output_ranges(
    verifier: &Verifier,
    net: &Network,
    spec: &InputSpec,
) -> Result<Vec<OutputRange>, VerifyError> {
    let mut ranges = Vec::with_capacity(net.outputs());
    for o in 0..net.outputs() {
        let obj = LinearObjective::output(o);
        let hi = verifier.maximize(net, spec, &obj)?;
        let neg = LinearObjective {
            terms: vec![(o, -1.0)],
            constant: 0.0,
        };
        let lo = verifier.maximize(net, spec, &neg)?;
        let exact = hi.is_exact() && lo.is_exact();
        let upper = hi.exact_max().unwrap_or(hi.upper_bound);
        let lower = lo.exact_max().map(|v| -v).unwrap_or(-lo.upper_bound);
        ranges.push(OutputRange {
            output: o,
            range: Interval::new(lower.min(upper), upper.max(lower)),
            exact,
        });
    }
    Ok(ranges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use certnn_linalg::Vector;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn ranges_contain_sampled_outputs_and_are_tight() {
        let net = Network::relu_mlp(3, &[6, 6], 2, 8).unwrap();
        let spec = InputSpec::from_box(vec![Interval::new(-1.0, 1.0); 3]).unwrap();
        let ranges = output_ranges(&Verifier::new(), &net, &spec).unwrap();
        assert_eq!(ranges.len(), 2);
        assert!(ranges.iter().all(|r| r.exact));
        let mut rng = StdRng::seed_from_u64(0);
        let mut seen = vec![Interval::point(0.0); 2];
        for k in 0..2000 {
            let x: Vector = (0..3).map(|_| rng.gen_range(-1.0..=1.0)).collect();
            let out = net.forward(&x).unwrap();
            for (o, r) in ranges.iter().enumerate() {
                assert!(
                    r.range.widened(1e-6).contains(out[o]),
                    "output {o} = {} outside verified {}",
                    out[o],
                    r.range
                );
                seen[o] = if k == 0 {
                    Interval::point(out[o])
                } else {
                    seen[o].hull(&Interval::point(out[o]))
                };
            }
        }
        // Exact ranges should not be wildly wider than the sampled hull.
        for (r, s) in ranges.iter().zip(&seen) {
            assert!(r.range.width() < 4.0 * s.width().max(0.1) + 1.0);
        }
    }

    #[test]
    fn range_is_tighter_than_symbolic_bounds() {
        use crate::bounds::symbolic_bounds;
        let net = Network::relu_mlp(4, &[8, 8], 1, 17).unwrap();
        let ib = vec![Interval::new(-1.0, 1.0); 4];
        let spec = InputSpec::from_box(ib.clone()).unwrap();
        let exact = &output_ranges(&Verifier::new(), &net, &spec).unwrap()[0];
        let loose = symbolic_bounds(&net, &ib).unwrap();
        let loose = loose.output_bounds()[0];
        assert!(loose.widened(1e-6).contains_interval(&exact.range));
        assert!(exact.range.width() <= loose.width() + 1e-9);
    }
}
