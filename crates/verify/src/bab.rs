//! Hybrid neuron branch-and-bound.
//!
//! The generic big-M MILP struggles on wide scenario boxes: its LP
//! relaxation is loose, so the global bound creeps. This module implements
//! what dedicated neural-network verifiers do instead — branch on **ReLU
//! phases** and re-run the symbolic bound propagation of
//! [`crate::bounds::analyze_with_phases`] at every node:
//!
//! * **Bounding** — each node's phase assignment yields a fresh symbolic
//!   upper bound on the objective, dramatically tighter than the node's
//!   LP relaxation because every forced neuron becomes *exact* in the
//!   propagation.
//! * **Incumbents** — each analysis also yields the box corner maximising
//!   its upper surrogate; a true forward pass through that corner is a
//!   genuine lower bound, so every node doubles as a heuristic.
//! * **Completeness** — once few enough neurons remain unstable, the node
//!   is handed to the exact big-M MILP with all decided phases fixed
//!   (including those *implied* by the node's propagated bounds), which
//!   closes the remaining gap exactly.
//!
//! The engine accepts box-only input specifications; specs with linear
//! scenario constraints fall back to the pure MILP path in
//! [`crate::verifier::Verifier`].

use crate::bounds::analyze_with_phases;
use crate::encoder::{encode, BoundMethod, Encoding};
use crate::property::{InputSpec, LinearObjective};
use crate::VerifyError;
use certnn_linalg::Vector;
use certnn_lp::{LpStatus, Simplex, VarId};
use certnn_milp::{BranchAndBound, MilpOptions, MilpStatus};
use certnn_nn::network::Network;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

/// Options for [`bab_maximize`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BabOptions {
    /// Wall-clock limit.
    pub time_limit: Option<Duration>,
    /// Node limit.
    pub node_limit: Option<usize>,
    /// Absolute gap at which the search stops as optimal.
    pub abs_gap: f64,
    /// Hand a node to the exact sub-MILP once at most this many neurons
    /// remain unstable.
    pub milp_threshold: usize,
    /// Stop as soon as an incumbent reaches this value.
    pub target_objective: Option<f64>,
    /// Stop as soon as the global upper bound drops below this value.
    pub bound_cutoff: Option<f64>,
    /// Solve the big-M LP relaxation (with node-tightened variable
    /// bounds and phase fixings) at every node and take the tighter of
    /// the symbolic and LP bounds. Slower per node, far stronger pruning
    /// on wide input boxes.
    pub lp_bounding: bool,
}

impl Default for BabOptions {
    fn default() -> Self {
        Self {
            time_limit: None,
            node_limit: None,
            abs_gap: 1e-6,
            milp_threshold: 8,
            target_objective: None,
            bound_cutoff: None,
            lp_bounding: true,
        }
    }
}

/// Result of a neuron branch-and-bound run.
#[derive(Debug, Clone)]
pub struct BabResult {
    /// Termination status (same vocabulary as the MILP layer).
    pub status: MilpStatus,
    /// Best objective value achieved by a real input.
    pub best_value: Option<f64>,
    /// Input achieving `best_value`.
    pub witness: Option<Vector>,
    /// Proven upper bound on the maximum.
    pub upper_bound: f64,
    /// Phase nodes explored.
    pub nodes: usize,
    /// Exact sub-MILP solves performed.
    pub milp_calls: usize,
    /// Simplex pivots inside sub-MILPs.
    pub lp_iterations: usize,
    /// Statistics of the underlying MILP encoding (for reporting).
    pub encoding_stats: crate::encoder::EncodingStats,
    /// Wall time.
    pub elapsed: Duration,
}

struct Node {
    phases: Vec<Option<bool>>,
    bound: f64,
    depth: usize,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound && self.depth == other.depth
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        self.bound
            .partial_cmp(&other.bound)
            .unwrap_or(Ordering::Equal)
            .then(self.depth.cmp(&other.depth))
    }
}

/// Maximises `objective` over a **box-only** specification by hybrid
/// neuron branch-and-bound.
///
/// # Errors
///
/// Returns [`VerifyError::SpecMismatch`] if the spec carries linear
/// constraints (use the MILP path) or does not match the network, and the
/// usual structural errors otherwise.
pub fn bab_maximize(
    net: &Network,
    spec: &InputSpec,
    objective: &LinearObjective,
    opts: &BabOptions,
) -> Result<BabResult, VerifyError> {
    if !spec.constraints().is_empty() {
        return Err(VerifyError::SpecMismatch {
            network_inputs: net.inputs(),
            spec_inputs: usize::MAX,
        });
    }
    objective.check_against(net)?;
    let start = Instant::now();
    let input_box = spec.bounds();
    let total_relu = net.num_relu_neurons();
    // Flat ReLU index -> (layer, neuron), for gradient-guided branching.
    let flat_map: Vec<(usize, usize)> = net
        .layers()
        .iter()
        .enumerate()
        .filter(|(_, l)| l.activation() == certnn_nn::activation::Activation::Relu)
        .flat_map(|(li, l)| (0..l.outputs()).map(move |j| (li, j)))
        .collect();
    // Objective gradient seed over the outputs.
    let obj_seed: Vector = {
        let mut v = vec![0.0; net.outputs()];
        for &(o, c) in &objective.terms {
            v[o] += c;
        }
        Vector::from(v)
    };

    // Encoding for the exact sub-MILP fallback (built once, bounds from
    // the same symbolic presolve).
    let enc: Encoding = encode(net, spec, BoundMethod::Symbolic)?;
    // Objective-bearing model for node LP relaxations and sub-MILPs.
    let obj_model = {
        let mut m = enc.milp.clone();
        let terms: Vec<_> = objective
            .terms
            .iter()
            .map(|&(o, c)| (enc.output_vars[o], c))
            .collect();
        m.set_objective(&terms);
        m
    };
    let base_bounds: Vec<(f64, f64)> = (0..obj_model.num_vars())
        .map(|i| obj_model.bounds(VarId::from_index(i)))
        .collect();
    let simplex = Simplex::new();

    let mut incumbent: Option<(Vector, f64)> = None;
    let mut nodes = 0usize;
    let mut milp_calls = 0usize;
    let mut lp_iterations = 0usize;
    let mut status = MilpStatus::Optimal;

    let try_incumbent = |x: &Vector, incumbent: &mut Option<(Vector, f64)>| -> f64 {
        let v = match net.forward(x) {
            Ok(out) => objective.eval(&out),
            Err(_) => return f64::NEG_INFINITY,
        };
        match incumbent {
            Some((_, best)) if v <= *best => {}
            _ => *incumbent = Some((x.clone(), v)),
        }
        v
    };

    let root_phases = vec![None; total_relu];
    let root = analyze_with_phases(net, input_box, &root_phases, objective)?;
    try_incumbent(&root.maximizer, &mut incumbent);
    let mut heap = BinaryHeap::new();
    heap.push(Node {
        phases: root_phases,
        bound: root.objective_upper,
        depth: 0,
    });
    let mut global_upper = root.objective_upper;

    'search: while let Some(node) = heap.pop() {
        global_upper = node.bound;
        if let Some((_, best)) = &incumbent {
            if global_upper <= *best + opts.abs_gap {
                global_upper = *best;
                break 'search;
            }
        }
        if let Some(cut) = opts.bound_cutoff {
            if global_upper < cut {
                status = MilpStatus::BoundCutoff;
                break 'search;
            }
        }
        if let Some(limit) = opts.time_limit {
            if start.elapsed() >= limit {
                status = MilpStatus::TimeLimit;
                break 'search;
            }
        }
        if let Some(limit) = opts.node_limit {
            if nodes >= limit {
                status = MilpStatus::NodeLimit;
                break 'search;
            }
        }
        nodes += 1;

        // Fresh analysis at the popped node (cheap relative to any LP).
        let analysis = analyze_with_phases(net, input_box, &node.phases, objective)?;
        if analysis.conflict {
            continue;
        }
        let node_bound = analysis.objective_upper.min(node.bound);
        if let Some((_, best)) = &incumbent {
            if node_bound <= *best + opts.abs_gap {
                continue;
            }
        }
        let new_val = try_incumbent(&analysis.maximizer, &mut incumbent);
        if let Some(target) = opts.target_objective {
            if new_val >= target {
                status = MilpStatus::TargetReached;
                break 'search;
            }
        }

        // Collect phase decisions (forced + implied by the node's bounds)
        // for the LP relaxation and the sub-MILP.
        let mut decided: Vec<(usize, bool)> = Vec::new(); // (flat, phase)
        {
            let mut relu_cursor = 0usize;
            for (li, layer) in net.layers().iter().enumerate() {
                if layer.activation() != certnn_nn::activation::Activation::Relu {
                    continue;
                }
                for j in 0..layer.outputs() {
                    let flat = relu_cursor;
                    relu_cursor += 1;
                    if enc.relu_binaries[flat].is_none() {
                        continue;
                    }
                    let iv = analysis.bounds.pre[li][j];
                    let implied = if iv.is_nonnegative() {
                        Some(true)
                    } else if iv.is_nonpositive() {
                        Some(false)
                    } else {
                        None
                    };
                    if let Some(v) = node.phases[flat].or(implied) {
                        decided.push((flat, v));
                    }
                }
            }
        }

        let mut node_bound = node_bound;
        if opts.lp_bounding {
            // LP relaxation with node-tightened variable bounds: fix the
            // decided binaries, clamp every pre-activation variable to its
            // phase-propagated interval and shrink the y uppers to match.
            let mut nb = base_bounds.clone();
            for (li, zl) in enc.z_vars.iter().enumerate() {
                for (j, zv) in zl.iter().enumerate() {
                    let iv = analysis.bounds.pre[li][j].widened(1e-6);
                    let (blo, bhi) = nb[zv.index()];
                    nb[zv.index()] = (blo.max(iv.lo()), bhi.min(iv.hi()));
                    if nb[zv.index()].0 > nb[zv.index()].1 {
                        nb[zv.index()] = (iv.lo(), iv.hi());
                    }
                }
            }
            for (flat, yv) in enc.y_vars.iter().enumerate() {
                let Some(yv) = yv else { continue };
                // Flat -> (layer, neuron) via the prefix sums in flat_map.
                let (li, j) = flat_map[flat];
                let hi = analysis.bounds.pre[li][j].hi().max(0.0) + 1e-6;
                let (blo, bhi) = nb[yv.index()];
                nb[yv.index()] = (blo, bhi.min(hi));
            }
            for &(flat, v) in &decided {
                if let Some(bin) = enc.relu_binaries[flat] {
                    let b = if v { 1.0 } else { 0.0 };
                    nb[bin.index()] = (b, b);
                }
            }
            let lp = simplex
                .solve_with_bounds(obj_model.relaxation(), &nb)
                .map_err(|e| VerifyError::from(certnn_milp::MilpError::from(e)))?;
            lp_iterations += lp.iterations;
            match lp.status {
                LpStatus::Infeasible => continue,
                LpStatus::Optimal => {
                    node_bound = node_bound.min(lp.objective + objective.constant);
                    // The relaxation's input values are a real point; use it.
                    let input: Vector =
                        enc.input_vars.iter().map(|v| lp.x[v.index()]).collect();
                    let val = try_incumbent(&input, &mut incumbent);
                    if let Some(target) = opts.target_objective {
                        if val >= target {
                            status = MilpStatus::TargetReached;
                            break 'search;
                        }
                    }
                }
                _ => {}
            }
            if let Some((_, best)) = &incumbent {
                if node_bound <= *best + opts.abs_gap {
                    continue;
                }
            }
        }

        if analysis.unstable.len() <= opts.milp_threshold {
            // Exact resolution: fix decided + implied phases in the MILP.
            let mut milp = obj_model.clone();
            for &(flat, v) in &decided {
                if let Some(bin) = enc.relu_binaries[flat] {
                    let b = if v { 1.0 } else { 0.0 };
                    milp.set_bounds(bin, b, b)
                        .map_err(certnn_milp::MilpError::from)?;
                }
            }
            let milp_opts = MilpOptions {
                time_limit: opts.time_limit.map(|l| {
                    l.saturating_sub(start.elapsed()).max(Duration::from_millis(100))
                }),
                ..MilpOptions::default()
            };
            let sol = BranchAndBound::with_options(milp_opts)
                .solve(&milp)
                .map_err(VerifyError::from)?;
            milp_calls += 1;
            lp_iterations += sol.lp_iterations;
            match sol.status {
                MilpStatus::Optimal | MilpStatus::Infeasible => {
                    if let (Some(x), Some(_)) = (&sol.x, sol.objective) {
                        let input: Vector =
                            enc.input_vars.iter().map(|v| x[v.index()]).collect();
                        let val = try_incumbent(&input, &mut incumbent);
                        if let Some(target) = opts.target_objective {
                            if val >= target {
                                status = MilpStatus::TargetReached;
                                break 'search;
                            }
                        }
                    }
                    // Node fully resolved either way.
                    continue;
                }
                _ => {
                    // Sub-MILP hit a limit: fall through to phase
                    // branching if possible, else give up on the node but
                    // keep its (sound) bound by re-queueing nothing — the
                    // global bound then stays at node_bound via `heap`
                    // emptiness handling below.
                    if analysis.unstable.is_empty() {
                        status = MilpStatus::TimeLimit;
                        global_upper = node_bound;
                        break 'search;
                    }
                }
            }
        }

        // Branch on the unstable neuron with the largest estimated
        // influence on the objective: |∂f/∂activation| at the node's
        // maximizer, times the pre-activation interval width (a BaBSR-style
        // score). Falls back to width alone when all gradients vanish.
        let grad_scores: Option<Vec<Vector>> = net
            .forward_trace(&analysis.maximizer)
            .ok()
            .and_then(|trace| net.activation_gradients(&trace, &obj_seed).ok());
        let (flat, _) = analysis
            .unstable
            .iter()
            .map(|&(flat, width)| {
                let g = grad_scores
                    .as_ref()
                    .map(|gs| {
                        let (li, j) = flat_map[flat];
                        gs[li][j].abs()
                    })
                    .unwrap_or(0.0);
                (flat, width * (g + 1e-6))
            })
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(Ordering::Equal))
            .expect("nonempty unstable list");
        for val in [true, false] {
            let mut phases = node.phases.clone();
            phases[flat] = Some(val);
            let child = analyze_with_phases(net, input_box, &phases, objective)?;
            if child.conflict {
                continue;
            }
            let child_bound = child.objective_upper.min(node_bound);
            try_incumbent(&child.maximizer, &mut incumbent);
            if let Some((_, best)) = &incumbent {
                if child_bound <= *best + opts.abs_gap {
                    continue;
                }
            }
            heap.push(Node {
                phases,
                bound: child_bound,
                depth: node.depth + 1,
            });
        }
    }

    if heap.is_empty() && status == MilpStatus::Optimal {
        if let Some((_, best)) = &incumbent {
            global_upper = *best;
        }
    }
    // Early exits leave the heap non-empty; the proven bound is the max of
    // the popped bound and everything still queued.
    if status != MilpStatus::Optimal {
        if let Some(top) = heap.peek() {
            global_upper = global_upper.max(top.bound);
        }
    }

    let (witness, best_value) = match incumbent {
        Some((x, v)) => (Some(x), Some(v)),
        None => (None, None),
    };
    Ok(BabResult {
        status,
        best_value,
        witness,
        upper_bound: global_upper,
        nodes,
        milp_calls,
        lp_iterations,
        encoding_stats: enc.stats,
        elapsed: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use certnn_linalg::Interval;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn unit_spec(n: usize) -> InputSpec {
        InputSpec::from_box(vec![Interval::new(-1.0, 1.0); n]).unwrap()
    }

    #[test]
    fn bab_matches_pure_milp_on_small_networks() {
        use crate::verifier::{Verifier, VerifierOptions};
        for seed in [5u64, 9, 21] {
            let net = Network::relu_mlp(3, &[8, 8], 2, seed).unwrap();
            let spec = unit_spec(3);
            let obj = LinearObjective::output(0);
            let milp_ref = Verifier::with_options(VerifierOptions {
                engine: crate::verifier::Engine::Milp,
                ..VerifierOptions::default()
            })
            .maximize(&net, &spec, &obj)
            .unwrap()
            .exact_max()
            .unwrap();
            let bab = bab_maximize(&net, &spec, &obj, &BabOptions::default()).unwrap();
            assert_eq!(bab.status, MilpStatus::Optimal);
            let got = bab.best_value.unwrap();
            assert!(
                (got - milp_ref).abs() < 1e-5,
                "seed {seed}: bab {got} vs milp {milp_ref}"
            );
            assert!(bab.upper_bound >= got - 1e-9);
        }
    }

    #[test]
    fn bab_witness_is_genuine_and_dominates_sampling() {
        let net = Network::relu_mlp(4, &[10, 10], 1, 3).unwrap();
        let spec = unit_spec(4);
        let obj = LinearObjective::output(0);
        let r = bab_maximize(&net, &spec, &obj, &BabOptions::default()).unwrap();
        assert_eq!(r.status, MilpStatus::Optimal);
        let max = r.best_value.unwrap();
        let w = r.witness.unwrap();
        assert!((net.forward(&w).unwrap()[0] - max).abs() < 1e-9);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..2000 {
            let x: Vector = (0..4).map(|_| rng.gen_range(-1.0..=1.0)).collect();
            assert!(net.forward(&x).unwrap()[0] <= max + 1e-6);
        }
    }

    #[test]
    fn bound_cutoff_and_target_short_circuit() {
        let net = Network::relu_mlp(4, &[10, 10], 1, 3).unwrap();
        let spec = unit_spec(4);
        let obj = LinearObjective::output(0);
        let exact = bab_maximize(&net, &spec, &obj, &BabOptions::default())
            .unwrap()
            .best_value
            .unwrap();
        // Cutoff far above the max: proven immediately.
        let opts = BabOptions {
            bound_cutoff: Some(exact + 100.0),
            ..BabOptions::default()
        };
        let r = bab_maximize(&net, &spec, &obj, &opts).unwrap();
        assert_eq!(r.status, MilpStatus::BoundCutoff);
        assert!(r.upper_bound < exact + 100.0);
        // Target below the max: a witness is found.
        let opts = BabOptions {
            target_objective: Some(exact - 0.05),
            ..BabOptions::default()
        };
        let r = bab_maximize(&net, &spec, &obj, &opts).unwrap();
        assert_eq!(r.status, MilpStatus::TargetReached);
        assert!(r.best_value.unwrap() >= exact - 0.05);
    }

    #[test]
    fn constraints_are_rejected() {
        use crate::property::{LinearConstraint, Relation};
        let net = Network::relu_mlp(2, &[4], 1, 0).unwrap();
        let spec = unit_spec(2).constrain(LinearConstraint {
            terms: vec![(0, 1.0)],
            relation: Relation::Le,
            rhs: 0.5,
        });
        let obj = LinearObjective::output(0);
        assert!(bab_maximize(&net, &spec, &obj, &BabOptions::default()).is_err());
    }

    #[test]
    fn degenerate_box_features_are_handled() {
        // Pinned features (degenerate intervals) are common in scenario
        // specs; the maximizer must respect them.
        let net = Network::relu_mlp(3, &[6], 1, 8).unwrap();
        let spec = InputSpec::from_box(vec![
            Interval::new(-1.0, 1.0),
            Interval::point(0.25),
            Interval::new(0.0, 0.5),
        ])
        .unwrap();
        let obj = LinearObjective::output(0);
        let r = bab_maximize(&net, &spec, &obj, &BabOptions::default()).unwrap();
        assert_eq!(r.status, MilpStatus::Optimal);
        let w = r.witness.unwrap();
        assert!((w[1] - 0.25).abs() < 1e-12);
        assert!(spec.contains(&w, 1e-9));
    }

    #[test]
    fn time_limit_reports_sound_bound() {
        let net = Network::relu_mlp(8, &[16, 16, 16], 1, 2).unwrap();
        let spec = unit_spec(8);
        let obj = LinearObjective::output(0);
        let opts = BabOptions {
            time_limit: Some(Duration::from_millis(50)),
            ..BabOptions::default()
        };
        let r = bab_maximize(&net, &spec, &obj, &opts).unwrap();
        // Whatever happened, the bound must dominate any sample.
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..500 {
            let x: Vector = (0..8).map(|_| rng.gen_range(-1.0..=1.0)).collect();
            assert!(net.forward(&x).unwrap()[0] <= r.upper_bound + 1e-6);
        }
        if let Some(v) = r.best_value {
            assert!(v <= r.upper_bound + 1e-6);
        }
    }
}
