//! Hybrid neuron branch-and-bound.
//!
//! The generic big-M MILP struggles on wide scenario boxes: its LP
//! relaxation is loose, so the global bound creeps. This module implements
//! what dedicated neural-network verifiers do instead — branch on **ReLU
//! phases** and re-run the symbolic bound propagation of
//! [`crate::bounds::analyze_with_phases`] at every node:
//!
//! * **Bounding** — each node's phase assignment yields a fresh symbolic
//!   upper bound on the objective, dramatically tighter than the node's
//!   LP relaxation because every forced neuron becomes *exact* in the
//!   propagation.
//! * **Incumbents** — each analysis also yields the box corner maximising
//!   its upper surrogate; a true forward pass through that corner is a
//!   genuine lower bound, so every node doubles as a heuristic.
//! * **Completeness** — once few enough neurons remain unstable, the node
//!   is handed to the exact big-M MILP with all decided phases fixed
//!   (including those *implied* by the node's propagated bounds), which
//!   closes the remaining gap exactly.
//!
//! # Parallel search
//!
//! The frontier is drained by [`BabOptions::threads`] workers over a
//! work-sharing **shared best-first heap** (`std::thread::scope` only —
//! no external runtime):
//!
//! * Workers pop the globally best node, process it (symbolic analysis,
//!   optional LP bounding, sub-MILP hand-off, phase branching) without
//!   holding the lock, and push surviving children back.
//! * The incumbent value lives in an `AtomicU64` (f64 bit-cast, updated
//!   only under the incumbent mutex, monotone non-decreasing), so pruning
//!   decisions propagate to every worker instantly; a stale read is
//!   always *conservative* — it can only under-prune, never cut a node
//!   that might contain the optimum.
//! * Termination is detected via an in-flight counter: the search is
//!   exhausted exactly when the heap is empty and no node is being
//!   processed. Early stops (gap closed, time/node limit, cutoff,
//!   target) are first-writer-wins; the bound of any work abandoned
//!   mid-flight is folded into the final `upper_bound`, so the result
//!   contract is the same as the serial engine's: `best_value` is a real
//!   input's objective and `upper_bound` dominates the true maximum up to
//!   `abs_gap`.
//! * Sub-MILP calls receive the cross-thread incumbent through
//!   [`MilpOptions::initial_bound`], so exact resolutions prune with
//!   knowledge gathered by *other* workers.
//!
//! With `threads == 1` the engine visits nodes in exactly the serial
//! best-first order. With more workers the visit order (and therefore
//! node counts and tie-breaks among equal optima) may differ run to run,
//! but the returned optimum obeys the same `abs_gap` contract.
//!
//! The engine accepts box-only input specifications; specs with linear
//! scenario constraints fall back to the pure MILP path in
//! [`crate::verifier::Verifier`].

use crate::bounds::{interval_objective_ceiling, PhaseAnalyzer, PhasedAnalysis};
use crate::checkpoint::{
    self, CheckpointError, CheckpointPolicy, Snapshot, SnapshotNode, WarmDesc,
};
use crate::encoder::{encode, BoundMethod, Encoding};
use crate::property::{InputSpec, LinearObjective};
use crate::VerifyError;
use certnn_linalg::{Interval, Vector};
use certnn_lp::{Deadline, Degradation, LpError, LpStatus, Simplex, VarId, WarmStart};
use certnn_milp::{
    BranchAndBound, MilpError, MilpModel, MilpOptions, MilpStats, MilpStatus, WarmTracker,
};
use certnn_nn::network::Network;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering as AtomicOrdering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Cached `bab.*` observability handles. Frequent per-node totals stay in
/// [`WorkerCounters`] and flush in one bulk add after the join; only rare
/// events (incumbents, panics, deaths) touch these directly mid-search.
struct BabMetrics {
    nodes: certnn_obs::Counter,
    incumbent_updates: certnn_obs::Counter,
    milp_calls: certnn_obs::Counter,
    node_panics: certnn_obs::Counter,
    worker_deaths: certnn_obs::Counter,
    lp_skipped: certnn_obs::Counter,
    lp_forced: certnn_obs::Counter,
    frontier_depth: certnn_obs::Gauge,
}

fn bab_metrics() -> &'static BabMetrics {
    static M: OnceLock<BabMetrics> = OnceLock::new();
    M.get_or_init(|| BabMetrics {
        nodes: certnn_obs::counter("bab.nodes"),
        incumbent_updates: certnn_obs::counter("bab.incumbent_updates"),
        milp_calls: certnn_obs::counter("bab.milp_calls"),
        node_panics: certnn_obs::counter("bab.node_panics"),
        worker_deaths: certnn_obs::counter("bab.worker_deaths"),
        lp_skipped: certnn_obs::counter("bab.lp_skipped"),
        lp_forced: certnn_obs::counter("bab.lp_forced"),
        frontier_depth: certnn_obs::gauge("bab.frontier_depth"),
    })
}

/// Accumulates wall time into a [`WorkerCounters`] nanosecond field on
/// drop — the "search clock" behind `nodes_per_sec`. Runs regardless of
/// the observability switch: two `Instant` reads per node are noise next
/// to an LP solve, and the throughput statistic must not change meaning
/// when tracing is off.
struct NanoClock<'a> {
    acc: &'a mut u64,
    start: Instant,
}

impl<'a> NanoClock<'a> {
    fn start(acc: &'a mut u64) -> Self {
        Self {
            acc,
            start: Instant::now(),
        }
    }
}

impl Drop for NanoClock<'_> {
    fn drop(&mut self) {
        *self.acc += self.start.elapsed().as_nanos() as u64;
    }
}
use std::thread;
use std::time::{Duration, Instant};

/// How many times a node whose processing panicked is re-queued before
/// its (sound) bound is folded and the subtree given up.
const MAX_NODE_RETRIES: usize = 2;

/// Default [`BabOptions::alpha_iters`]: coordinate-descent rounds of the
/// α-optimized bounding layer. One round already captures most of the
/// gain because children warm-start from the parent's tuned slopes.
/// `0` switches the tuner off and reproduces the fixed-slope heuristic
/// bit-for-bit.
pub const DEFAULT_ALPHA_ITERS: usize = 1;

/// Default [`BabOptions::lp_skip_margin`]: `0.0` disables the
/// near-prune leg of the skip gate, leaving only the sub-MILP elision.
/// Measurement on the Table II widths showed that any finite margin
/// starves deep subtrees of the LP tightening their descendants inherit
/// (node bounds min-chain from parent to child) and explodes the node
/// count; see DESIGN.md.
pub const DEFAULT_LP_SKIP_MARGIN: f64 = 0.0;

/// Resolves a thread-count knob: `0` means "one worker per available
/// core", any other value is used as-is.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        threads
    }
}

/// Options for [`bab_maximize`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BabOptions {
    /// Wall-clock limit.
    pub time_limit: Option<Duration>,
    /// Node limit.
    pub node_limit: Option<usize>,
    /// Absolute gap at which the search stops as optimal.
    pub abs_gap: f64,
    /// Hand a node to the exact sub-MILP once at most this many neurons
    /// remain unstable.
    pub milp_threshold: usize,
    /// Stop as soon as an incumbent reaches this value.
    pub target_objective: Option<f64>,
    /// Stop as soon as the global upper bound drops below this value.
    pub bound_cutoff: Option<f64>,
    /// Solve the big-M LP relaxation (with node-tightened variable
    /// bounds and phase fixings) at every node and take the tighter of
    /// the symbolic and LP bounds. Slower per node, far stronger pruning
    /// on wide input boxes.
    pub lp_bounding: bool,
    /// Search workers draining the shared frontier. `1` (the default)
    /// reproduces the serial best-first visit order exactly; `0` means
    /// one worker per available core (see [`resolve_threads`]).
    pub threads: usize,
    /// Warm-start LP bounding solves from a per-worker basis cache and
    /// warm-start sub-MILP trees from parent bases. Verdict-preserving;
    /// disable only to collect a cold baseline.
    pub warm_start: bool,
    /// Coordinate-descent rounds of the α-optimized bounding layer per
    /// node (see [`PhaseAnalyzer::analyze_tuned`]). `0` disables tuning
    /// and reproduces the fixed-slope heuristic bit-for-bit; the root
    /// encoding then also falls back to [`BoundMethod::Symbolic`].
    pub alpha_iters: usize,
    /// Elide the standalone LP relaxation where it is provably redundant
    /// or unlikely to prune: at nodes handed to the exact sub-MILP
    /// (whose root solve is that same relaxation) and — when
    /// [`BabOptions::lp_skip_margin`] is positive — at nodes whose
    /// α-tightened bound already sits within the margin of the prune
    /// level. Metered as `bab.lp_skipped` vs `bab.lp_forced`. Sound: the
    /// symbolic bound alone is a valid node bound; the LP only ever
    /// tightens it. Disable to reproduce LP-at-every-node behaviour.
    pub lp_skip: bool,
    /// Margin of the near-prune leg of the LP-skip gate, in objective
    /// units; `0.0` (the default) disables that leg.
    pub lp_skip_margin: f64,
}

impl Default for BabOptions {
    fn default() -> Self {
        Self {
            time_limit: None,
            node_limit: None,
            abs_gap: 1e-6,
            milp_threshold: 8,
            target_objective: None,
            bound_cutoff: None,
            lp_bounding: true,
            threads: 1,
            warm_start: true,
            alpha_iters: DEFAULT_ALPHA_ITERS,
            lp_skip: true,
            lp_skip_margin: DEFAULT_LP_SKIP_MARGIN,
        }
    }
}

/// Result of a neuron branch-and-bound run.
#[derive(Debug, Clone)]
pub struct BabResult {
    /// Termination status (same vocabulary as the MILP layer).
    pub status: MilpStatus,
    /// Best objective value achieved by a real input.
    pub best_value: Option<f64>,
    /// Input achieving `best_value`.
    pub witness: Option<Vector>,
    /// Proven upper bound on the maximum.
    pub upper_bound: f64,
    /// Phase nodes explored.
    pub nodes: usize,
    /// Exact sub-MILP solves performed.
    pub milp_calls: usize,
    /// Simplex pivots inside sub-MILPs.
    pub lp_iterations: usize,
    /// Statistics of the underlying MILP encoding (for reporting).
    pub encoding_stats: crate::encoder::EncodingStats,
    /// Wall time.
    pub elapsed: Duration,
    /// Search workers used (after resolving `threads == 0`).
    pub threads_used: usize,
    /// Node throughput on the search clock: `nodes` divided by the
    /// bound+branch wall time summed across workers. Setup (encoding,
    /// root analysis) and result folding are excluded, so the figure is
    /// comparable across thread counts; it falls back to `nodes / elapsed`
    /// only when no node was ever timed.
    pub nodes_per_sec: f64,
    /// Warm-start accounting aggregated over all workers: the per-worker
    /// LP bounding caches plus every sub-MILP tree.
    pub warm_stats: MilpStats,
    /// Nodes whose LP relaxation the skip gate elided (see
    /// [`BabOptions::lp_skip`]). `0` when the gate is off.
    pub lp_skipped: usize,
    /// Nodes whose LP relaxation ran while the skip gate was active.
    pub lp_forced: usize,
    /// Worst degradation encountered anywhere in the search: `Exact`
    /// unless a fault forced a fallback, a worker panicked, or a deadline
    /// folded unexplored subtrees into the bound. The bound is sound at
    /// every level.
    pub degradation: Degradation,
}

#[derive(Clone)]
struct Node {
    phases: Vec<Option<bool>>,
    bound: f64,
    depth: usize,
    /// Creation sequence number, assigned under the frontier lock (root
    /// is `0`). Makes the heap order *total*: among nodes with equal
    /// `(bound, depth)` the earliest-created pops first, so the pop
    /// sequence is a pure function of the frontier's contents — required
    /// for a resumed search to replay the uninterrupted run exactly
    /// (`BinaryHeap` breaks ties by internal layout, which a
    /// serialize/rebuild cycle cannot preserve).
    seq: u64,
    /// Panic-retry count: how many times this node's processing died and
    /// was re-queued (see [`MAX_NODE_RETRIES`]).
    retries: usize,
    /// Optimal basis of the nearest solved ancestor, shared across
    /// siblings. Parent-to-child bound changes are small (one binary
    /// fixed plus interval refinements), so this basis has far better
    /// locality than any last-solved cache under best-first ordering.
    warm: Option<Arc<WarmStart>>,
    /// Tuned α slopes of the nearest tuned ancestor, shared across
    /// siblings — the warm start of this node's own α descent. One fixed
    /// phase barely moves the optimal slopes, so children converge in a
    /// round or two. `None` when tuning is off (`alpha_iters == 0`).
    alpha: Option<Arc<Vec<f64>>>,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound && self.depth == other.depth && self.seq == other.seq
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        self.bound
            .partial_cmp(&other.bound)
            .unwrap_or(Ordering::Equal)
            .then(self.depth.cmp(&other.depth))
            // Reversed: the *earliest-created* of otherwise-equal nodes is
            // the greatest, i.e. FIFO among ties. seq is unique, so the
            // order is total and the heap's pop sequence deterministic.
            .then(other.seq.cmp(&self.seq))
    }
}

/// Read-only context shared by every search worker.
struct SearchCtx<'a> {
    net: &'a Network,
    input_box: &'a [Interval],
    objective: &'a LinearObjective,
    opts: &'a BabOptions,
    enc: &'a Encoding,
    obj_model: &'a MilpModel,
    base_bounds: &'a [(f64, f64)],
    simplex: &'a Simplex,
    flat_map: &'a [(usize, usize)],
    obj_seed: &'a Vector,
    start: Instant,
    /// Search deadline (ambient tightened by [`BabOptions::time_limit`]),
    /// polled between nodes here and between pivot batches inside every
    /// LP/sub-MILP solve.
    deadline: &'a Deadline,
    /// Id of the run's `bab.run` span, so worker spans on other threads
    /// can parent to it in the trace.
    obs_run_span: Option<u64>,
}

/// Mutable frontier state, all guarded by one mutex.
struct Frontier {
    heap: BinaryHeap<Node>,
    /// Nodes popped but not yet completed by a worker.
    in_flight: usize,
    /// Per-worker bound of the node currently being processed
    /// (`NEG_INFINITY` when idle) — in-flight work counts toward the
    /// global upper bound.
    active: Vec<f64>,
    /// Per-worker clone of the claimed node, kept **only while
    /// checkpointing is active** so a snapshot can serialize in-flight
    /// work instead of losing it; `None` everywhere otherwise (zero cost
    /// when the feature is off).
    claimed: Vec<Option<Node>>,
    /// Next [`Node::seq`] to assign; restored across resumes.
    next_seq: u64,
    /// Processed-node counter (the serial `nodes` statistic).
    nodes: usize,
    /// `nodes` value at the last snapshot (cadence tracking).
    last_ckpt_nodes: usize,
    /// Wall instant of the last snapshot (cadence tracking).
    last_ckpt_at: Instant,
    /// First stop reason; later stop attempts keep the first.
    halt: Option<MilpStatus>,
    /// Max bound over subtrees abandoned by an early stop; folded into
    /// the final `upper_bound` for soundness.
    abandoned: f64,
    /// Max bound over nodes *dropped* mid-search — repeated panics or
    /// unrecoverable numeric failures — folded into the final
    /// `upper_bound` regardless of how the search ends.
    dropped: f64,
    /// Worst degradation recorded through frontier events (panics, dead
    /// workers); per-node degradations accumulate in worker counters.
    degradation: Degradation,
    /// The subset of `degradation` that must survive a checkpoint/resume
    /// cycle: permanently lost subtrees (`IntervalOnly`) and rejected
    /// resumes (`CheckpointFallback`). Deadline tags (`TimedOut`) are
    /// *transient* — a resumed run that finishes cleanly with all saved
    /// work must not inherit the previous run's timeout — so they merge
    /// into `degradation` only.
    sticky_degradation: Degradation,
    /// Workers whose threads died (panic escaped the per-node isolation).
    dead_workers: usize,
    /// A worker hit a structural error; everyone drains out.
    failed: bool,
}

/// Per-run checkpointing state derived from a [`CheckpointPolicy`].
struct CkptRuntime {
    /// This query's checkpoint file (content-addressed name).
    path: PathBuf,
    /// Fingerprint of (weights, property, search-shape options, seed).
    query_hash: u64,
    /// Run seed recorded into every snapshot.
    seed: u64,
    /// Snapshot after this many newly processed nodes (≥ 1).
    every_nodes: usize,
    /// Snapshot after this much wall time since the last one.
    every: Duration,
    /// Start of *this* run, for the cumulative elapsed figure.
    run_start: Instant,
    /// Search wall time accumulated by previous runs of this query.
    prior_elapsed_nanos: u64,
    /// Single-writer gate: at most one worker serializes at a time;
    /// others skip their cadence check instead of queueing.
    writing: AtomicBool,
}

/// Frontier fields restored from a resumed snapshot (defaults for a
/// fresh search).
struct FrontierInit {
    nodes: usize,
    next_seq: u64,
    dropped: f64,
    degradation: Degradation,
}

impl Default for FrontierInit {
    fn default() -> Self {
        Self {
            nodes: 0,
            next_seq: 1,
            dropped: f64::NEG_INFINITY,
            degradation: Degradation::Exact,
        }
    }
}

/// Everything a snapshot needs from the frontier, cloned under the lock;
/// serialization and file IO then happen outside it.
struct SnapshotJob {
    nodes: Vec<Node>,
    nodes_done: u64,
    next_seq: u64,
    dropped: f64,
    degradation: Degradation,
}

/// Cross-worker search state.
struct SearchState {
    frontier: Mutex<Frontier>,
    work_ready: Condvar,
    incumbent: Mutex<Option<(Vector, f64)>>,
    /// `f64::to_bits` of the incumbent value, written only under the
    /// incumbent mutex. Reads are lock-free and monotone: a stale value
    /// is always lower, so pruning against it is conservative (sound).
    best_bits: AtomicU64,
    /// Checkpointing runtime; `None` means the feature is off and every
    /// hook below is a no-op.
    ckpt: Option<CkptRuntime>,
}

/// Per-worker statistic accumulators, merged after the join.
#[derive(Default)]
struct WorkerCounters {
    milp_calls: usize,
    lp_iterations: usize,
    /// Warm/cold accounting of this worker's LP bounding solves.
    tracker: WarmTracker,
    /// Warm-start statistics reported by this worker's sub-MILP trees.
    milp_stats: MilpStats,
    /// Simplex pivots inside sub-MILP trees (diagnostic split).
    submilp_pivots: usize,
    /// Worst degradation observed by this worker's solves.
    degradation: Degradation,
    /// Wall time this worker spent bounding nodes (analysis, LP
    /// relaxation, sub-MILP), nanoseconds.
    bound_nanos: u64,
    /// Wall time this worker spent selecting branch variables and
    /// building children, nanoseconds.
    branch_nanos: u64,
    /// Nodes whose LP relaxation the skip gate elided (symbolic bound far
    /// above the prune level).
    lp_skipped: usize,
    /// Nodes whose LP relaxation ran with the skip gate active (bound
    /// within the margin, or no finite prune level yet).
    lp_forced: usize,
}

/// What one processed node produced.
#[derive(Default)]
struct NodeOutcome {
    children: Vec<Node>,
    /// Early-stop request: `(status, bound of this node's abandoned
    /// subtree)`.
    halt: Option<(MilpStatus, f64)>,
    /// Bound of a subtree given up on an unrecoverable numeric failure;
    /// folded into the final `upper_bound` without halting the search.
    dropped: Option<f64>,
}

impl NodeOutcome {
    fn halt(status: MilpStatus, bound: f64) -> Self {
        Self {
            children: Vec::new(),
            halt: Some((status, bound)),
            dropped: None,
        }
    }

    fn dropped(bound: f64) -> Self {
        Self {
            children: Vec::new(),
            halt: None,
            dropped: Some(bound),
        }
    }
}

impl SearchState {
    fn new(
        workers: usize,
        roots: Vec<Node>,
        init: FrontierInit,
        ckpt: Option<CkptRuntime>,
    ) -> Self {
        Self {
            frontier: Mutex::new(Frontier {
                heap: BinaryHeap::from(roots),
                in_flight: 0,
                active: vec![f64::NEG_INFINITY; workers],
                claimed: (0..workers).map(|_| None).collect(),
                next_seq: init.next_seq,
                nodes: init.nodes,
                last_ckpt_nodes: init.nodes,
                last_ckpt_at: Instant::now(),
                halt: None,
                abandoned: f64::NEG_INFINITY,
                dropped: init.dropped,
                degradation: init.degradation,
                sticky_degradation: init.degradation,
                dead_workers: 0,
                failed: false,
            }),
            work_ready: Condvar::new(),
            incumbent: Mutex::new(None),
            best_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            ckpt,
        }
    }

    /// Lock-free read of the incumbent value (`NEG_INFINITY` when none).
    fn best(&self) -> f64 {
        f64::from_bits(self.best_bits.load(AtomicOrdering::Acquire))
    }

    /// Bounds at or below this level cannot beat the incumbent within
    /// `abs_gap`. `NEG_INFINITY` when there is no incumbent yet.
    fn prune_level(&self, abs_gap: f64) -> f64 {
        let b = self.best();
        if b == f64::NEG_INFINITY {
            f64::NEG_INFINITY
        } else {
            b + abs_gap
        }
    }

    /// Evaluates `x` through the network and installs it as incumbent if
    /// it improves the best value. Returns the achieved objective.
    fn try_incumbent(&self, ctx: &SearchCtx, x: &Vector) -> f64 {
        let v = match ctx.net.forward(x) {
            Ok(out) => ctx.objective.eval(&out),
            Err(_) => return f64::NEG_INFINITY,
        };
        // Poison-tolerant: incumbent updates are value-monotone (a
        // half-finished write is at worst a stale-but-valid pair), so a
        // panicked writer must not wedge every other worker.
        let mut inc = self.incumbent.lock().unwrap_or_else(|e| e.into_inner());
        let cur = inc.as_ref().map(|(_, b)| *b);
        match cur {
            Some(best) if v <= best => {}
            _ => {
                *inc = Some((x.clone(), v));
                self.best_bits.store(v.to_bits(), AtomicOrdering::Release);
                bab_metrics().incumbent_updates.inc();
            }
        }
        v
    }

    /// Incumbent value for seeding a sub-MILP's
    /// [`MilpOptions::initial_bound`], re-verified before use: the stored
    /// witness must lie inside the input box and a fresh forward pass must
    /// reproduce the stored value. An incumbent that fails either check is
    /// never handed down as a feasible-point claim — the sub-MILP then
    /// simply runs unseeded, which is always sound.
    fn verified_seed(&self, ctx: &SearchCtx) -> Option<f64> {
        let inc = self.incumbent.lock().unwrap_or_else(|e| e.into_inner());
        let (x, v) = inc.as_ref()?;
        if x.len() != ctx.input_box.len() {
            return None;
        }
        for (xi, iv) in x.iter().zip(ctx.input_box) {
            if *xi < iv.lo() - 1e-9 || *xi > iv.hi() + 1e-9 {
                return None;
            }
        }
        let out = ctx.net.forward(x).ok()?;
        let recomputed = ctx.objective.eval(&out);
        if !recomputed.is_finite() || (recomputed - v).abs() > 1e-6 {
            return None;
        }
        // Seed the smaller of the two: the bound must never overstate
        // what the witness actually achieves.
        Some(recomputed.min(*v))
    }

    /// Claims the next node for worker `wid`, or `None` when the search
    /// is over (exhausted, halted, or failed). Performs the global
    /// gap/cutoff/limit checks that the serial loop ran at each pop.
    fn next_work(&self, ctx: &SearchCtx, wid: usize) -> Option<Node> {
        // Poison-tolerant: every frontier mutation keeps the invariants
        // (counters adjusted together, pushes complete before unlocking),
        // so a poisoned lock from a panicking worker carries a usable
        // state and must not take the surviving workers down with it.
        let mut f = self.frontier.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if f.halt.is_some() || f.failed {
                return None;
            }
            let queued = f.heap.peek().map(|n| n.bound);
            if queued.is_none() && f.in_flight == 0 {
                // Exhausted: natural (optimal) completion.
                return None;
            }
            // Global upper bound estimate over queued and in-flight work.
            let running = f.active.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let gu = queued.unwrap_or(f64::NEG_INFINITY).max(running);

            let prune = self.prune_level(ctx.opts.abs_gap);
            if gu <= prune {
                // Nothing anywhere can beat the incumbent: gap closed.
                f.halt = Some(MilpStatus::Optimal);
                self.work_ready.notify_all();
                return None;
            }
            if let Some(cut) = ctx.opts.bound_cutoff {
                if gu.is_finite() && gu < cut {
                    f.halt = Some(MilpStatus::BoundCutoff);
                    f.abandoned = f.abandoned.max(gu);
                    self.work_ready.notify_all();
                    return None;
                }
            }
            if ctx.deadline.expired() {
                f.halt = Some(MilpStatus::TimeLimit);
                f.abandoned = f.abandoned.max(gu);
                f.degradation = f.degradation.merge(Degradation::TimedOut);
                self.work_ready.notify_all();
                return None;
            }
            if let Some(limit) = ctx.opts.node_limit {
                if f.nodes >= limit && queued.is_some() {
                    f.halt = Some(MilpStatus::NodeLimit);
                    f.abandoned = f.abandoned.max(gu);
                    self.work_ready.notify_all();
                    return None;
                }
            }

            match f.heap.pop() {
                Some(node) => {
                    if node.bound <= prune {
                        // Stale node overtaken by a newer incumbent.
                        continue;
                    }
                    f.nodes += 1;
                    f.in_flight += 1;
                    f.active[wid] = node.bound;
                    if self.ckpt.is_some() {
                        // Keep a clone so a snapshot can re-queue this
                        // in-flight node instead of losing it to a kill.
                        f.claimed[wid] = Some(node.clone());
                    }
                    bab_metrics().frontier_depth.set(f.heap.len() as i64);
                    return Some(node);
                }
                None => {
                    // In-flight work elsewhere may still push children;
                    // the timeout keeps time limits responsive even if a
                    // notification is missed.
                    let (guard, _) = self
                        .work_ready
                        .wait_timeout(f, Duration::from_millis(10))
                        .unwrap_or_else(|e| e.into_inner());
                    f = guard;
                }
            }
        }
    }

    /// Publishes the outcome of worker `wid`'s current node.
    fn complete(&self, wid: usize, outcome: NodeOutcome) {
        let job = {
            let mut f = self.frontier.lock().unwrap_or_else(|e| e.into_inner());
            for mut child in outcome.children {
                // Sequence numbers are assigned here, under the lock, in
                // the order `process_node` created the children — the one
                // place the assignment is race-free and deterministic.
                child.seq = f.next_seq;
                f.next_seq += 1;
                f.heap.push(child);
            }
            if let Some((status, bound)) = outcome.halt {
                if f.halt.is_none() {
                    f.halt = Some(status);
                }
                f.abandoned = f.abandoned.max(bound);
            }
            if let Some(bound) = outcome.dropped {
                f.dropped = f.dropped.max(bound);
            }
            f.active[wid] = f64::NEG_INFINITY;
            f.claimed[wid] = None;
            f.in_flight -= 1;
            bab_metrics().frontier_depth.set(f.heap.len() as i64);
            self.work_ready.notify_all();
            self.snapshot_due(&mut f)
        };
        if let Some(job) = job {
            self.write_checkpoint(job);
        }
    }

    /// Decides under the frontier lock whether a snapshot is due and, if
    /// so, clones what it needs. Returns `None` when checkpointing is off,
    /// the search is stopping (the final flush owns that state), the
    /// cadence has not fired, or another worker is already writing.
    fn snapshot_due(&self, f: &mut Frontier) -> Option<SnapshotJob> {
        let rt = self.ckpt.as_ref()?;
        if f.halt.is_some() || f.failed {
            return None;
        }
        let due_nodes = f.nodes - f.last_ckpt_nodes >= rt.every_nodes;
        let due_time = f.last_ckpt_at.elapsed() >= rt.every;
        if !due_nodes && !due_time {
            return None;
        }
        if rt
            .writing
            .compare_exchange(
                false,
                true,
                AtomicOrdering::AcqRel,
                AtomicOrdering::Acquire,
            )
            .is_err()
        {
            return None;
        }
        f.last_ckpt_nodes = f.nodes;
        f.last_ckpt_at = Instant::now();
        Some(collect_snapshot_job(f))
    }

    /// Serializes and atomically writes a snapshot outside the frontier
    /// lock. Failures are reported through obs and otherwise ignored:
    /// checkpointing must never affect the solve.
    fn write_checkpoint(&self, job: SnapshotJob) {
        let Some(rt) = self.ckpt.as_ref() else { return };
        let incumbent = {
            let inc = self.incumbent.lock().unwrap_or_else(|e| e.into_inner());
            inc.as_ref()
                .map(|(x, v)| (x.iter().copied().collect::<Vec<f64>>(), *v))
        };
        serialize_and_write(rt, &job, incumbent);
    }

    /// Publishes a panic while worker `wid` processed `node`: the node is
    /// re-queued a bounded number of times; past that its (sound) bound
    /// is folded into the dropped accumulator so the subtree is never
    /// silently lost from the final upper bound.
    fn panic_complete(&self, wid: usize, mut node: Node) {
        bab_metrics().node_panics.inc();
        let requeued = node.retries < MAX_NODE_RETRIES;
        certnn_obs::event(
            "bab.node_panic",
            vec![
                ("worker", wid.into()),
                ("retries", node.retries.into()),
                ("bound", node.bound.into()),
                ("requeued", requeued.into()),
            ],
        );
        let mut f = self.frontier.lock().unwrap_or_else(|e| e.into_inner());
        f.degradation = f.degradation.merge(Degradation::IntervalOnly);
        f.sticky_degradation = f.sticky_degradation.merge(Degradation::IntervalOnly);
        if requeued {
            node.retries += 1;
            f.heap.push(node);
        } else {
            f.dropped = f.dropped.max(node.bound);
        }
        f.active[wid] = f64::NEG_INFINITY;
        f.claimed[wid] = None;
        f.in_flight -= 1;
        self.work_ready.notify_all();
    }

    /// Records the death of worker `wid`'s thread (a panic that escaped
    /// per-node isolation): its claimed bound is folded so the final
    /// upper bound stays sound, its in-flight slot is released so the
    /// survivors' exhaustion check still terminates, and a fully-dead
    /// pool halts the search with [`MilpStatus::Aborted`] instead of
    /// hanging.
    fn worker_died(&self, wid: usize) {
        bab_metrics().worker_deaths.inc();
        let mut f = self.frontier.lock().unwrap_or_else(|e| e.into_inner());
        let claimed = f.active[wid];
        if claimed != f64::NEG_INFINITY {
            f.dropped = f.dropped.max(claimed);
            f.active[wid] = f64::NEG_INFINITY;
            f.in_flight = f.in_flight.saturating_sub(1);
        }
        // The node dies with its worker in the live run, so it must not
        // also be serialized: the dropped fold above is its record.
        f.claimed[wid] = None;
        f.dead_workers += 1;
        f.degradation = f.degradation.merge(Degradation::IntervalOnly);
        f.sticky_degradation = f.sticky_degradation.merge(Degradation::IntervalOnly);
        let pool_dead = f.dead_workers >= f.active.len();
        if pool_dead && f.halt.is_none() {
            f.halt = Some(MilpStatus::Aborted);
        }
        // Machine-readable fault record for chaos runs: which worker died,
        // whether it held a node (and that node's folded bound), and
        // whether its death aborted the whole search.
        certnn_obs::event(
            "bab.worker_died",
            vec![
                ("worker", wid.into()),
                ("held_node", (claimed != f64::NEG_INFINITY).into()),
                ("folded_bound", claimed.into()),
                ("dead_workers", f.dead_workers.into()),
                ("pool_aborted", pool_dead.into()),
            ],
        );
        self.work_ready.notify_all();
    }

    /// Records a structural failure of worker `wid` and releases its
    /// claimed node so the other workers drain out. The claimed bound is
    /// folded first — even an error path must not silently tighten the
    /// reported bound.
    fn fail(&self, wid: usize) {
        let mut f = self.frontier.lock().unwrap_or_else(|e| e.into_inner());
        f.failed = true;
        if f.active[wid] != f64::NEG_INFINITY {
            f.dropped = f.dropped.max(f.active[wid]);
        }
        f.active[wid] = f64::NEG_INFINITY;
        f.claimed[wid] = None;
        f.in_flight -= 1;
        self.work_ready.notify_all();
    }
}

/// Clones everything a snapshot serializes: the queued heap plus every
/// claimed in-flight node. `nodes_done` excludes in-flight work — those
/// nodes are serialized for re-processing, so the resumed search counts
/// them again at re-claim and the cumulative node count matches an
/// uninterrupted run exactly.
fn collect_snapshot_job(f: &Frontier) -> SnapshotJob {
    let mut nodes: Vec<Node> = f.heap.iter().cloned().collect();
    nodes.extend(f.claimed.iter().flatten().cloned());
    SnapshotJob {
        nodes,
        nodes_done: (f.nodes - f.in_flight) as u64,
        next_seq: f.next_seq,
        dropped: f.dropped,
        degradation: f.sticky_degradation,
    }
}

/// Encodes a snapshot and writes it atomically, metering the outcome and
/// always releasing the single-writer gate. IO failures are reported
/// through obs and otherwise swallowed — checkpointing must never affect
/// the solve.
fn serialize_and_write(rt: &CkptRuntime, job: &SnapshotJob, incumbent: Option<(Vec<f64>, f64)>) {
    let t0 = Instant::now();
    let snap = build_snapshot(rt, job, incumbent);
    match checkpoint::write_snapshot(&rt.path, &snap) {
        Ok(bytes) => {
            let m = checkpoint::ckpt_metrics();
            m.written.inc();
            m.bytes.add(bytes);
            m.snapshot_nanos.record_duration(t0.elapsed());
        }
        Err(e) => {
            certnn_obs::event("ckpt.write_failed", vec![("error", e.to_string().into())]);
        }
    }
    rt.writing.store(false, AtomicOrdering::Release);
}

/// Converts a [`SnapshotJob`] into the serializable [`Snapshot`], deduping
/// warm-start bases by `Arc` identity (siblings share their parent's) and
/// describing each as a pure basis signature — factorizations never leave
/// the process.
fn build_snapshot(
    rt: &CkptRuntime,
    job: &SnapshotJob,
    incumbent: Option<(Vec<f64>, f64)>,
) -> Snapshot {
    let mut warm_pool: Vec<WarmDesc> = Vec::new();
    let mut warm_index: HashMap<usize, u64> = HashMap::new();
    let frontier = job
        .nodes
        .iter()
        .map(|n| {
            let warm_idx = n.warm.as_ref().map(|w| {
                let key = Arc::as_ptr(w) as usize;
                *warm_index.entry(key).or_insert_with(|| {
                    let (basis, status) = w.describe();
                    warm_pool.push(WarmDesc {
                        m: basis.len() as u64,
                        n_struct: (status.len() - basis.len()) as u64,
                        basis,
                        status,
                    });
                    (warm_pool.len() - 1) as u64
                })
            });
            SnapshotNode {
                bound: n.bound,
                depth: n.depth as u64,
                seq: n.seq,
                retries: n.retries.min(u8::MAX as usize) as u8,
                phases: n
                    .phases
                    .iter()
                    .map(|p| match p {
                        None => 0u8,
                        Some(false) => 1,
                        Some(true) => 2,
                    })
                    .collect(),
                alpha: n.alpha.as_deref().cloned(),
                warm_idx,
            }
        })
        .collect();
    Snapshot {
        query_hash: rt.query_hash,
        seed: rt.seed,
        nodes_done: job.nodes_done,
        next_seq: job.next_seq,
        elapsed_nanos: rt.prior_elapsed_nanos + rt.run_start.elapsed().as_nanos() as u64,
        dropped_bound: job.dropped,
        degradation: job.degradation,
        incumbent,
        warm_pool,
        frontier,
    }
}

/// What the resume attempt produced.
enum ResumeOutcome {
    /// No checkpoint on disk — a plain fresh solve, no tag.
    Fresh,
    /// A file exists but cannot be trusted (corruption, torn write,
    /// wrong query, structural lie): fresh solve tagged
    /// [`Degradation::CheckpointFallback`].
    Rejected(CheckpointError),
    /// A fully verified snapshot to rebuild the frontier from.
    Resumed(Box<Snapshot>),
}

/// Reads and fully vets a checkpoint for this exact query. Never panics
/// and never surfaces an error to the solve: every failure mode maps to a
/// fresh solve.
fn load_resume(
    path: &std::path::Path,
    expected_hash: u64,
    total_relu: usize,
    num_inputs: usize,
) -> ResumeOutcome {
    match checkpoint::read_snapshot(path) {
        Err(CheckpointError::Io(std::io::ErrorKind::NotFound, _)) => ResumeOutcome::Fresh,
        Err(e) => ResumeOutcome::Rejected(e),
        Ok(snap) => {
            if snap.query_hash != expected_hash {
                return ResumeOutcome::Rejected(CheckpointError::QueryMismatch {
                    expected: expected_hash,
                    found: snap.query_hash,
                });
            }
            match snap.validate(total_relu, num_inputs) {
                Ok(()) => ResumeOutcome::Resumed(Box::new(snap)),
                Err(e) => ResumeOutcome::Rejected(e),
            }
        }
    }
}

/// Rebuilds live frontier nodes from a vetted snapshot. Warm starts are
/// reconstructed from their basis signatures with no factorization — the
/// first LP solve re-factorizes from the model's own columns. A basis
/// description the LP layer rejects degrades that one node to a cold
/// solve (`None`), which is always sound.
fn rebuild_frontier(snap: &Snapshot) -> Vec<Node> {
    let warm_arcs: Vec<Option<Arc<WarmStart>>> = snap
        .warm_pool
        .iter()
        .map(|d| {
            WarmStart::from_description(&d.basis, &d.status, d.n_struct as usize, d.m as usize)
                .map(Arc::new)
        })
        .collect();
    snap.frontier
        .iter()
        .map(|sn| Node {
            phases: sn
                .phases
                .iter()
                .map(|&p| match p {
                    1 => Some(false),
                    2 => Some(true),
                    _ => None,
                })
                .collect(),
            bound: sn.bound,
            depth: sn.depth as usize,
            seq: sn.seq,
            retries: sn.retries as usize,
            warm: sn.warm_idx.and_then(|i| warm_arcs[i as usize].clone()),
            // Any α in [0,1] is sound; clamp rather than trust.
            alpha: sn
                .alpha
                .as_ref()
                .map(|a| Arc::new(a.iter().map(|v| v.clamp(0.0, 1.0)).collect())),
        })
        .collect()
}

/// Maximises `objective` over a **box-only** specification by hybrid
/// neuron branch-and-bound; see the module docs for the parallel search
/// architecture.
///
/// # Errors
///
/// Returns [`VerifyError::SpecMismatch`] if the spec carries linear
/// constraints (use the MILP path) or does not match the network, and the
/// usual structural errors otherwise.
pub fn bab_maximize(
    net: &Network,
    spec: &InputSpec,
    objective: &LinearObjective,
    opts: &BabOptions,
) -> Result<BabResult, VerifyError> {
    bab_maximize_under(net, spec, objective, opts, Deadline::none())
}

/// [`bab_maximize`] under an ambient [`Deadline`]/cancellation token from
/// the caller (fleet runner, pipeline). The effective deadline is the
/// ambient one tightened by [`BabOptions::time_limit`]; it is polled
/// between nodes and inside every LP and sub-MILP solve, and expiry yields
/// a sound bound tagged [`Degradation::TimedOut`].
///
/// # Errors
///
/// Same contract as [`bab_maximize`].
pub fn bab_maximize_under(
    net: &Network,
    spec: &InputSpec,
    objective: &LinearObjective,
    opts: &BabOptions,
    deadline: Deadline,
) -> Result<BabResult, VerifyError> {
    bab_maximize_ckpt(net, spec, objective, opts, deadline, None)
}

/// [`bab_maximize_under`] with crash-safe checkpointing: under a
/// [`CheckpointPolicy`] the search snapshots its frontier at the policy's
/// cadence, flushes a final snapshot when it stops early (time/node limit,
/// aborted pool) so the run returns a *resumable* handle, deletes the
/// snapshot on a completed answer, and — when the policy asks to resume —
/// rebuilds the frontier from a vetted snapshot of the same query.
///
/// Resume is never trusted blindly: checksums, the query content-address
/// and every structural invariant are verified, warm factorizations are
/// re-derived rather than read, and the stored incumbent is re-proved by a
/// fresh forward pass. Any failure degrades to a fresh solve tagged
/// [`Degradation::CheckpointFallback`] — it never errors.
///
/// # Errors
///
/// Same contract as [`bab_maximize`]; checkpoint IO failures are reported
/// through obs, never as errors.
pub fn bab_maximize_ckpt(
    net: &Network,
    spec: &InputSpec,
    objective: &LinearObjective,
    opts: &BabOptions,
    deadline: Deadline,
    ckpt: Option<&CheckpointPolicy>,
) -> Result<BabResult, VerifyError> {
    if !spec.constraints().is_empty() {
        return Err(VerifyError::SpecMismatch {
            network_inputs: net.inputs(),
            spec_inputs: usize::MAX,
        });
    }
    objective.check_against(net)?;
    let start = Instant::now();
    let run_span = certnn_obs::span("bab.run");
    let encode_phase = certnn_obs::phase(certnn_obs::Phase::Encode);
    let input_box = spec.bounds();
    let total_relu = net.num_relu_neurons();
    // Flat ReLU index -> (layer, neuron), for gradient-guided branching.
    let flat_map: Vec<(usize, usize)> = net
        .layers()
        .iter()
        .enumerate()
        .filter(|(_, l)| l.activation() == certnn_nn::activation::Activation::Relu)
        .flat_map(|(li, l)| (0..l.outputs()).map(move |j| (li, j)))
        .collect();
    // Objective gradient seed over the outputs.
    let obj_seed: Vector = {
        let mut v = vec![0.0; net.outputs()];
        for &(o, c) in &objective.terms {
            v[o] += c;
        }
        Vector::from(v)
    };

    // Encoding for the exact sub-MILP fallback (built once). With α
    // tuning on, the encoder runs the same descent over whole-network
    // bounds: more stably-fixed neurons (fewer binaries) and tighter
    // big-M constants. `alpha_iters == 0` keeps the plain symbolic
    // presolve bit-for-bit.
    let bound_method = if opts.alpha_iters > 0 {
        BoundMethod::AlphaOptimized {
            iters: opts.alpha_iters,
        }
    } else {
        BoundMethod::Symbolic
    };
    let enc: Encoding = encode(net, spec, bound_method)?;
    // Objective-bearing model for node LP relaxations and sub-MILPs.
    let obj_model = {
        let mut m = enc.milp.clone();
        let terms: Vec<_> = objective
            .terms
            .iter()
            .map(|&(o, c)| (enc.output_vars[o], c))
            .collect();
        m.set_objective(&terms);
        m
    };
    let base_bounds: Vec<(f64, f64)> = (0..obj_model.num_vars())
        .map(|i| obj_model.bounds(VarId::from_index(i)))
        .collect();
    let deadline = deadline.tighten(opts.time_limit);
    let simplex = Simplex::new().with_deadline(deadline.clone());

    let threads_used = resolve_threads(opts.threads);
    let ctx = SearchCtx {
        net,
        input_box,
        objective,
        opts,
        enc: &enc,
        obj_model: &obj_model,
        base_bounds: &base_bounds,
        simplex: &simplex,
        flat_map: &flat_map,
        obj_seed: &obj_seed,
        start,
        deadline: &deadline,
        obs_run_span: run_span.id(),
    };

    let root_phases = vec![None; total_relu];
    let (root, root_alpha) = PhaseAnalyzer::new(net, input_box)?.analyze_tuned(
        &root_phases,
        objective,
        opts.alpha_iters,
        None,
    )?;
    let root_bound = root.objective_upper;
    // The symbolic root bound is usually tighter than plain interval
    // arithmetic but is not guaranteed to be; the ceiling caps whatever
    // bound the search hands back when it cannot finish.
    let iv_ceiling = interval_objective_ceiling(net, input_box, objective)?;

    // Checkpoint setup: content-address the query, then (optionally) vet
    // and load an existing snapshot. Every failure mode short of a clean
    // resume is a fresh solve — corruption costs the salvaged work, never
    // the answer.
    let mut ckpt_rt: Option<CkptRuntime> = None;
    let mut init = FrontierInit::default();
    let mut resume_nodes: Option<Vec<Node>> = None;
    let mut resume_witness: Option<Vec<f64>> = None;
    if let Some(policy) = ckpt {
        // Fold the run seed and every tree-shaping option into the file
        // key: a snapshot only ever meets a search that would walk the
        // identical tree.
        let query_hash = {
            let mut h = checkpoint::Fnv1a::new();
            h.write_u64(checkpoint::query_fingerprint(net, spec, objective));
            h.write_u64(policy.seed);
            h.write_f64(opts.abs_gap);
            h.write_u64(opts.milp_threshold as u64);
            h.write_u64(opts.alpha_iters as u64);
            h.write(&[
                u8::from(opts.lp_bounding),
                u8::from(opts.warm_start),
                u8::from(opts.lp_skip),
            ]);
            h.write_f64(opts.lp_skip_margin);
            h.write_f64(opts.target_objective.unwrap_or(f64::NAN));
            h.write_f64(opts.bound_cutoff.unwrap_or(f64::NAN));
            h.finish()
        };
        let path = policy.file_for(query_hash);
        let mut prior_elapsed_nanos = 0u64;
        if policy.resume {
            match load_resume(&path, query_hash, total_relu, net.inputs()) {
                ResumeOutcome::Fresh => {}
                ResumeOutcome::Rejected(e) => {
                    checkpoint::ckpt_metrics().corrupt_fallbacks.inc();
                    init.degradation = Degradation::CheckpointFallback;
                    certnn_obs::event(
                        "ckpt.resume_rejected",
                        vec![
                            ("error", e.to_string().into()),
                            ("path", path.display().to_string().into()),
                        ],
                    );
                }
                ResumeOutcome::Resumed(snap) => {
                    checkpoint::ckpt_metrics().resume_ok.inc();
                    prior_elapsed_nanos = snap.elapsed_nanos;
                    init.nodes = snap.nodes_done as usize;
                    init.next_seq = snap.next_seq;
                    init.dropped = snap.dropped_bound;
                    init.degradation = snap.degradation;
                    resume_witness = snap.incumbent.as_ref().map(|(w, _)| w.clone());
                    resume_nodes = Some(rebuild_frontier(&snap));
                    certnn_obs::event(
                        "ckpt.resumed",
                        vec![
                            ("nodes_done", snap.nodes_done.into()),
                            ("frontier", snap.frontier.len().into()),
                            ("path", path.display().to_string().into()),
                        ],
                    );
                }
            }
        }
        ckpt_rt = Some(CkptRuntime {
            path,
            query_hash,
            seed: policy.seed,
            every_nodes: policy.every_nodes.max(1),
            every: policy.every,
            run_start: start,
            prior_elapsed_nanos,
            writing: AtomicBool::new(false),
        });
    }

    let roots = match resume_nodes {
        Some(nodes) => nodes,
        None => vec![Node {
            phases: root_phases,
            bound: root_bound,
            depth: 0,
            seq: 0,
            retries: 0,
            warm: None,
            alpha: root_alpha.map(Arc::new),
        }],
    };
    let state = SearchState::new(threads_used, roots, init, ckpt_rt);
    state.try_incumbent(&ctx, &root.maximizer);
    if let Some(w) = resume_witness {
        // The stored incumbent is only ever installed through a fresh
        // forward pass: its achieved value is re-derived, never read.
        state.try_incumbent(&ctx, &Vector::from(w));
    }
    drop(encode_phase);

    // Work-sharing scoped worker pool. With one worker this runs the
    // exact serial best-first loop (on a spawned thread). Each node is
    // processed under `catch_unwind`, so a panic costs one node attempt
    // (re-queued up to MAX_NODE_RETRIES, then folded), not the worker;
    // the outer `catch_unwind` turns even an escaped panic into a dead
    // worker whose state is cleaned up instead of a wedged pool.
    let worker_results: Vec<Result<WorkerCounters, VerifyError>> = thread::scope(|s| {
        let handles: Vec<_> = (0..threads_used)
            .map(|wid| {
                let ctx = &ctx;
                let state = &state;
                s.spawn(move || {
                    let body = catch_unwind(AssertUnwindSafe(|| worker_loop(ctx, state, wid)));
                    match body {
                        Ok(result) => result,
                        Err(_) => {
                            state.worker_died(wid);
                            // The worker's counters die with it; stats
                            // under-report, bounds stay sound.
                            Ok(WorkerCounters::default())
                        }
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(result) => result,
                // Unreachable (the worker body is fully caught), but a
                // join error must not panic the caller either.
                Err(_) => Ok(WorkerCounters::default()),
            })
            .collect()
    });

    let fold_phase = certnn_obs::phase(certnn_obs::Phase::Fold);
    let mut milp_calls = 0usize;
    let mut lp_iterations = 0usize;
    let mut lp_skipped = 0usize;
    let mut lp_forced = 0usize;
    let mut warm_stats = MilpStats::default();
    let mut degradation = Degradation::Exact;
    let mut search_nanos = 0u64;
    for (wid, result) in worker_results.into_iter().enumerate() {
        let counters = result?;
        milp_calls += counters.milp_calls;
        lp_iterations += counters.lp_iterations;
        lp_skipped += counters.lp_skipped;
        lp_forced += counters.lp_forced;
        search_nanos += counters.bound_nanos + counters.branch_nanos;
        // Structured per-worker warm-start accounting (replaces the old
        // CERTNN_WARM_DEBUG stderr dump): machine-readable in the trace,
        // silent otherwise.
        let lp_stats = counters.tracker.stats();
        certnn_obs::event(
            "bab.worker_stats",
            vec![
                ("worker", wid.into()),
                ("lp_warm_solves", lp_stats.warm_solves.into()),
                ("lp_cold_solves", lp_stats.cold_solves.into()),
                ("lp_pivots_saved", lp_stats.pivots_saved.into()),
                ("lp_skipped", counters.lp_skipped.into()),
                ("lp_forced", counters.lp_forced.into()),
                ("submilp_warm_solves", counters.milp_stats.warm_solves.into()),
                ("submilp_cold_solves", counters.milp_stats.cold_solves.into()),
                ("submilp_pivots", counters.submilp_pivots.into()),
                ("bound_nanos", counters.bound_nanos.into()),
                ("branch_nanos", counters.branch_nanos.into()),
            ],
        );
        warm_stats.merge(lp_stats);
        warm_stats.merge(counters.milp_stats);
        degradation = degradation.merge(counters.degradation);
    }

    let frontier = state
        .frontier
        .into_inner()
        .unwrap_or_else(|e| e.into_inner());
    let incumbent = state
        .incumbent
        .into_inner()
        .unwrap_or_else(|e| e.into_inner());
    let mut status = frontier.halt.unwrap_or(MilpStatus::Optimal);
    degradation = degradation.merge(frontier.degradation);
    let best = incumbent.as_ref().map(|(_, v)| *v);

    let mut upper_bound = if status == MilpStatus::Optimal {
        // Exhausted or gap-closed: the incumbent is optimal up to
        // `abs_gap` (root bound is the sound fallback if no real input
        // was ever evaluated).
        best.unwrap_or(root_bound)
    } else {
        // Early stop: the proven bound is the max over everything not
        // fully explored — abandoned subtrees, the remaining frontier
        // and the incumbent itself.
        let mut ub = frontier.abandoned;
        if let Some(top) = frontier.heap.peek() {
            ub = ub.max(top.bound);
        }
        if let Some(b) = best {
            ub = ub.max(b);
        }
        if ub == f64::NEG_INFINITY {
            ub = root_bound;
        }
        ub
    };
    // Subtrees dropped on panics or numeric failures fold into the bound
    // no matter how the search ended; an Optimal claim they re-open
    // honestly degrades to Aborted.
    if frontier.dropped > f64::NEG_INFINITY {
        if status == MilpStatus::Optimal && frontier.dropped > upper_bound + opts.abs_gap {
            status = MilpStatus::Aborted;
        }
        upper_bound = upper_bound.max(frontier.dropped);
    }
    // Min of two sound upper bounds is sound: a degraded answer must
    // never be looser than the interval fallback it degrades towards.
    // Closed searches are unaffected (the optimum sits below the ceiling).
    upper_bound = upper_bound.min(iv_ceiling);
    if status == MilpStatus::TimeLimit {
        degradation = degradation.merge(Degradation::TimedOut);
    } else if status == MilpStatus::Aborted {
        degradation = degradation.merge(Degradation::IntervalOnly);
    }

    let elapsed = start.elapsed();
    let (witness, best_value) = match incumbent {
        Some((x, v)) => (Some(x), Some(v)),
        None => (None, None),
    };
    // Throughput on the *search clock*: nodes per second of bound+branch
    // work summed across workers. Total elapsed would also count encoding
    // and fold time, inflating per-thread comparisons on short runs.
    let nodes_per_sec = if search_nanos > 0 {
        frontier.nodes as f64 / (search_nanos as f64 * 1e-9)
    } else {
        frontier.nodes as f64 / elapsed.as_secs_f64().max(1e-9)
    };

    if certnn_obs::enabled() {
        let m = bab_metrics();
        m.nodes.add(frontier.nodes as u64);
        m.milp_calls.add(milp_calls as u64);
        m.lp_skipped.add(lp_skipped as u64);
        m.lp_forced.add(lp_forced as u64);
        certnn_obs::event(
            "bab.done",
            vec![
                ("status", format!("{status:?}").into()),
                ("degradation", degradation.as_str().into()),
                ("nodes", frontier.nodes.into()),
                ("lp_skipped", lp_skipped.into()),
                ("upper_bound", upper_bound.into()),
                ("search_nanos", search_nanos.into()),
                ("threads", threads_used.into()),
            ],
        );
    }
    // Anytime semantics: an early stop flushes a final snapshot so the
    // caller holds a resumable handle; a finished answer (optimal,
    // cutoff, target, infeasible) deletes the file — a completed query
    // must not leave a stale resume behind.
    let total_nodes = frontier.nodes;
    if let Some(rt) = &state.ckpt {
        let resumable = matches!(
            status,
            MilpStatus::TimeLimit | MilpStatus::NodeLimit | MilpStatus::Aborted
        );
        if resumable {
            let mut nodes = frontier.heap.into_vec();
            nodes.extend(frontier.claimed.into_iter().flatten());
            let job = SnapshotJob {
                nodes,
                nodes_done: (total_nodes - frontier.in_flight) as u64,
                next_seq: frontier.next_seq,
                dropped: frontier.dropped,
                degradation: frontier.sticky_degradation,
            };
            let inc = match (&witness, best_value) {
                (Some(x), Some(v)) => Some((x.iter().copied().collect::<Vec<f64>>(), v)),
                _ => None,
            };
            serialize_and_write(rt, &job, inc);
        } else {
            checkpoint::remove_snapshot(&rt.path);
        }
    }
    drop(fold_phase);
    drop(run_span);

    Ok(BabResult {
        status,
        best_value,
        witness,
        upper_bound,
        nodes: total_nodes,
        milp_calls,
        lp_iterations,
        encoding_stats: enc.stats,
        elapsed,
        threads_used,
        nodes_per_sec,
        warm_stats,
        lp_skipped,
        lp_forced,
        degradation,
    })
}

/// Body of one search worker: claim nodes, process each under panic
/// isolation, publish outcomes. A panicking node is re-queued (bounded)
/// and the analyzer rebuilt, so one poisoned node costs one attempt, not
/// the worker.
fn worker_loop(
    ctx: &SearchCtx,
    state: &SearchState,
    wid: usize,
) -> Result<WorkerCounters, VerifyError> {
    let _worker_span = certnn_obs::span_child_of("bab.worker", ctx.obs_run_span);
    let mut analyzer = PhaseAnalyzer::new(ctx.net, ctx.input_box)?;
    let mut counters = WorkerCounters::default();
    // Per-worker LP-bounding basis cache: workers never share bases, so
    // the parallel engine stays lock-free.
    let mut lp_warm: Option<Arc<WarmStart>> = None;
    while let Some(node) = state.next_work(ctx, wid) {
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            #[cfg(feature = "fault-inject")]
            if certnn_lp::fault::fire_panic() {
                panic!("injected worker panic");
            }
            process_node(ctx, state, &mut analyzer, &node, &mut counters, &mut lp_warm)
        }));
        match attempt {
            Ok(Ok(outcome)) => state.complete(wid, outcome),
            Ok(Err(e)) => {
                state.fail(wid);
                return Err(e);
            }
            Err(_) => {
                state.panic_complete(wid, node);
                // The analyzer may have been left mid-update; rebuild.
                analyzer = PhaseAnalyzer::new(ctx.net, ctx.input_box)?;
            }
        }
    }
    Ok(counters)
}

/// Processes one claimed node: bound, harvest incumbents, hand off to the
/// sub-MILP when small enough, branch otherwise. Runs without any lock;
/// all cross-worker communication goes through `state`.
fn process_node(
    ctx: &SearchCtx,
    state: &SearchState,
    analyzer: &mut PhaseAnalyzer,
    node: &Node,
    counters: &mut WorkerCounters,
    lp_warm: &mut Option<Arc<WarmStart>>,
) -> Result<NodeOutcome, VerifyError> {
    let opts = ctx.opts;
    // Bound portion of the search clock: symbolic analysis, LP
    // relaxation and sub-MILP. The guard accounts on every early return.
    let bound_clock = NanoClock::start(&mut counters.bound_nanos);
    let bound_phase = certnn_obs::phase(certnn_obs::Phase::Bound);
    // Fresh heuristic analysis at the popped node (cheap relative to any
    // LP). This analysis drives everything shape-affecting — branching
    // choice, incumbents, LP bounds, decided phases — so with α tuning
    // off the tree is bit-for-bit today's.
    let analysis = analyzer.analyze(&node.phases, ctx.objective)?;
    if analysis.conflict {
        return Ok(NodeOutcome::default());
    }
    let mut node_bound = analysis.objective_upper.min(node.bound);
    // α refinement: a *second* sound bound from the inherited
    // (ancestor-tuned) slopes, refined by at most `alpha_iters` flips.
    // Only the bound (and a conflict, which proves the region empty)
    // feeds the search — branching stays on the heuristic analysis, so
    // the α pass can only prune subtrees, never reshape them.
    let mut node_alpha = node.alpha.clone();
    if opts.alpha_iters > 0 {
        if let Some(a) = node.alpha.as_deref() {
            let (alpha_an, refined) =
                analyzer.refine_alpha(&node.phases, ctx.objective, a, opts.alpha_iters)?;
            if alpha_an.conflict {
                return Ok(NodeOutcome::default());
            }
            node_bound = node_bound.min(alpha_an.objective_upper);
            node_alpha = Some(Arc::new(refined));
        }
    }
    if node_bound <= state.prune_level(opts.abs_gap) {
        return Ok(NodeOutcome::default());
    }
    let new_val = state.try_incumbent(ctx, &analysis.maximizer);
    if let Some(target) = opts.target_objective {
        if new_val >= target {
            return Ok(NodeOutcome::halt(MilpStatus::TargetReached, node_bound));
        }
    }

    // Collect phase decisions (forced + implied by the node's bounds)
    // for the LP relaxation and the sub-MILP.
    let decided = decided_phases(ctx, node, &analysis);

    // Basis handed to this node's sub-MILP root and children: the node's
    // own LP solution when bounding runs, else the inherited ancestor's.
    let mut node_snap = node.warm.clone();

    // LP-skip gate. Two elisions, both sound because the symbolic bound
    // is a valid node bound on its own:
    //
    // * A node about to be resolved by the exact sub-MILP skips its
    //   standalone relaxation — the sub-MILP's root solve *is* that
    //   relaxation (same model, binaries pinned), and the cross-thread
    //   incumbent seed reproduces the prune-before-branch check.
    // * A node whose α-tightened bound already sits within
    //   `lp_skip_margin` of the prune level branches directly: its
    //   children's (cheap) symbolic analyses usually finish the kill.
    //   `0.0` disables this leg — measurement on the Table II widths
    //   shows per-node LP bounds compound down the tree (children
    //   inherit them via `min`), so starving deep subtrees of LP
    //   tightening explodes the node count; see DESIGN.md.
    //
    // The LP always runs while no finite prune level exists: the
    // relaxation is then the main source of bound tightening and
    // incumbents.
    let run_lp = if !opts.lp_bounding {
        false
    } else if !opts.lp_skip {
        true
    } else if analysis.unstable.len() <= opts.milp_threshold {
        counters.lp_skipped += 1;
        false
    } else {
        let pivot = state
            .prune_level(opts.abs_gap)
            .max(opts.bound_cutoff.unwrap_or(f64::NEG_INFINITY));
        let near = pivot.is_finite() && node_bound - pivot <= opts.lp_skip_margin;
        if near {
            counters.lp_skipped += 1;
        } else {
            counters.lp_forced += 1;
        }
        !near
    };

    if run_lp {
        // LP relaxation with node-tightened variable bounds: fix the
        // decided binaries, clamp every pre-activation variable to its
        // phase-propagated interval and shrink the y uppers to match.
        // An empty base ∩ phase-propagated intersection proves the node
        // region infeasible — prune it outright.
        let Some(nb) =
            tighten_node_bounds(ctx.enc, ctx.flat_map, ctx.base_bounds, &analysis, &decided)
        else {
            return Ok(NodeOutcome::default());
        };
        // Warm-start from the node's inherited ancestor basis when one
        // exists: parent and child relaxations differ by one fixed binary
        // plus interval refinements, the ideal dual-simplex re-solve.
        // A last-solved per-worker cache is the fallback for nodes with no
        // ancestor basis — under best-first ordering consecutive pops jump
        // across the tree, so that basis is stale and only used when
        // nothing better is at hand. Both paths are worker-private, so the
        // parallel engine stays lock-free.
        // LP bounding only ever *tightens* the symbolic bound, so a typed
        // numeric failure here (even after `solve_warm`'s own cold rung)
        // degrades gracefully: skip the tightening for this node and keep
        // the sound symbolic bound instead of aborting the search.
        let attempt = if opts.warm_start {
            match node.warm.as_deref().or(lp_warm.as_deref()) {
                Some(w) => ctx.simplex.solve_warm(ctx.obj_model.relaxation(), &nb, w),
                None => ctx.simplex.solve_snapshot(ctx.obj_model.relaxation(), &nb),
            }
        } else {
            ctx.simplex
                .solve_with_bounds(ctx.obj_model.relaxation(), &nb)
                .map(|solution| certnn_lp::WarmSolve {
                    solution,
                    warm: None,
                    warm_used: false,
                    fallback: None,
                })
        };
        let lp = match attempt {
            Ok(ws) => {
                if ws.warm_used {
                    counters.tracker.record_warm(ws.solution.iterations);
                } else {
                    counters.tracker.record_cold(ws.solution.iterations);
                }
                if ws.fallback.is_some() {
                    counters.degradation = counters.degradation.merge(Degradation::ColdFallback);
                }
                if let Some(snap) = ws.warm {
                    let snap = Arc::new(snap);
                    *lp_warm = Some(snap.clone());
                    node_snap = Some(snap);
                }
                Some(ws.solution)
            }
            Err(LpError::Solve(_)) => {
                counters.degradation = counters.degradation.merge(Degradation::IntervalOnly);
                None
            }
            Err(e) => return Err(VerifyError::from(MilpError::from(e))),
        };
        if let Some(lp) = lp {
            counters.lp_iterations += lp.iterations;
            match lp.status {
                LpStatus::Infeasible => return Ok(NodeOutcome::default()),
                LpStatus::Optimal => {
                    node_bound = node_bound.min(lp.objective + ctx.objective.constant);
                    // The relaxation's input values are a real point; use it.
                    let input: Vector =
                        ctx.enc.input_vars.iter().map(|v| lp.x[v.index()]).collect();
                    let val = state.try_incumbent(ctx, &input);
                    if let Some(target) = opts.target_objective {
                        if val >= target {
                            return Ok(NodeOutcome::halt(MilpStatus::TargetReached, node_bound));
                        }
                    }
                }
                _ => {}
            }
        }
        if node_bound <= state.prune_level(opts.abs_gap) {
            return Ok(NodeOutcome::default());
        }
    }

    if analysis.unstable.len() <= opts.milp_threshold {
        // Exact resolution: fix decided + implied phases in the MILP.
        let mut milp = ctx.obj_model.clone();
        for &(flat, v) in &decided {
            if let Some(bin) = ctx.enc.relu_binaries[flat] {
                let b = if v { 1.0 } else { 0.0 };
                milp.set_bounds(bin, b, b)
                    .map_err(certnn_milp::MilpError::from)?;
            }
        }
        // Seed the sub-MILP with the cross-thread incumbent: its pruning
        // then benefits from every other worker's discoveries. The seed is
        // re-verified first (witness in box, forward pass reproduces the
        // value) so an unachievable number can never be handed down as a
        // feasible-point claim; `initial_bound` is pruning-only either way.
        let milp_opts = MilpOptions {
            time_limit: opts.time_limit.map(|l| {
                l.saturating_sub(ctx.start.elapsed())
                    .max(Duration::from_millis(100))
            }),
            initial_bound: state
                .verified_seed(ctx)
                .map(|v| v - ctx.objective.constant),
            warm_start: opts.warm_start,
            ..MilpOptions::default()
        };
        // The sub-MILP is the same model with binaries pinned, so the
        // node's relaxation basis seeds its root solve directly. Its own
        // retry ladder absorbs numeric faults; a typed error escaping it
        // drops this node with a sound folded bound instead of killing
        // the whole search.
        let mut solver =
            BranchAndBound::with_options(milp_opts).with_deadline(ctx.deadline.clone());
        if let Some(w) = &node_snap {
            solver = solver.with_root_warm(w.clone());
        }
        let sol = match solver.solve(&milp) {
            Ok(sol) => Some(sol),
            Err(MilpError::Lp(LpError::Solve(_))) => {
                counters.degradation = counters.degradation.merge(Degradation::IntervalOnly);
                if analysis.unstable.is_empty() {
                    // Nothing left to branch on: give the node up, but
                    // keep its sound bound in the final fold.
                    return Ok(NodeOutcome::dropped(node_bound));
                }
                None // fall through to phase branching
            }
            Err(e) => return Err(VerifyError::from(e)),
        };
        if let Some(sol) = sol {
            counters.milp_calls += 1;
            counters.lp_iterations += sol.lp_iterations;
            counters.submilp_pivots += sol.lp_iterations;
            counters.milp_stats.merge(sol.stats);
            counters.degradation = counters.degradation.merge(sol.degradation);
            match sol.status {
                MilpStatus::Optimal | MilpStatus::Infeasible => {
                    if let (Some(x), Some(_)) = (&sol.x, sol.objective) {
                        let input: Vector =
                            ctx.enc.input_vars.iter().map(|v| x[v.index()]).collect();
                        let val = state.try_incumbent(ctx, &input);
                        if let Some(target) = opts.target_objective {
                            if val >= target {
                                return Ok(NodeOutcome::halt(
                                    MilpStatus::TargetReached,
                                    node_bound,
                                ));
                            }
                        }
                    }
                    // Node fully resolved either way.
                    return Ok(NodeOutcome::default());
                }
                MilpStatus::Aborted => {
                    // The sub-MILP degraded to a folded bound; keep the
                    // node's own (sound) bound and drop the node rather
                    // than trusting a truncated exact resolution.
                    if analysis.unstable.is_empty() {
                        return Ok(NodeOutcome::dropped(node_bound));
                    }
                }
                _ => {
                    // Sub-MILP hit a limit: fall through to phase branching
                    // if possible, else give up on the node but keep its
                    // (sound) bound via the abandoned fold.
                    if analysis.unstable.is_empty() {
                        return Ok(NodeOutcome::halt(MilpStatus::TimeLimit, node_bound));
                    }
                }
            }
        }
    }

    // Branch portion of the search clock.
    drop(bound_phase);
    drop(bound_clock);
    let _branch_clock = NanoClock::start(&mut counters.branch_nanos);
    let _branch_phase = certnn_obs::phase(certnn_obs::Phase::Branch);

    // Branch on the unstable neuron with the largest estimated influence
    // on the objective: |∂f/∂activation| at the node's maximizer, times
    // the pre-activation interval width (a BaBSR-style score). Falls back
    // to width alone when all gradients vanish.
    let grad_scores: Option<Vec<Vector>> = ctx
        .net
        .forward_trace(&analysis.maximizer)
        .ok()
        .and_then(|trace| ctx.net.activation_gradients(&trace, ctx.obj_seed).ok());
    let (flat, _) = analysis
        .unstable
        .iter()
        .map(|&(flat, width)| {
            let g = grad_scores
                .as_ref()
                .map(|gs| {
                    let (li, j) = ctx.flat_map[flat];
                    gs[li][j].abs()
                })
                .unwrap_or(0.0);
            (flat, width * (g + 1e-6))
        })
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(Ordering::Equal))
        .expect("nonempty unstable list");
    let mut outcome = NodeOutcome::default();
    for val in [true, false] {
        let mut phases = node.phases.clone();
        phases[flat] = Some(val);
        // Heuristic evaluation, exactly as with tuning off: the child's
        // stored bound decides frontier order, so keeping it on the
        // heuristic path keeps pop order — and therefore the shape of
        // the surviving tree — independent of α. The child refines the
        // inherited slopes itself when popped.
        let child = analyzer.analyze(&phases, ctx.objective)?;
        if child.conflict {
            continue;
        }
        let child_bound = child.objective_upper.min(node_bound);
        state.try_incumbent(ctx, &child.maximizer);
        if child_bound <= state.prune_level(opts.abs_gap) {
            continue;
        }
        outcome.children.push(Node {
            phases,
            bound: child_bound,
            depth: node.depth + 1,
            // Placeholder: the real sequence number is assigned under the
            // frontier lock when `complete` pushes the child.
            seq: 0,
            retries: 0,
            warm: node_snap.clone(),
            alpha: node_alpha.clone(),
        });
    }
    Ok(outcome)
}

/// Builds the LP relaxation's node-tightened variable bounds: every
/// pre-activation clamped to base ∩ phase-propagated interval (both
/// sides already widened by 1e-6), every unstable post-activation's
/// upper shrunk to match, and every decided binary fixed.
///
/// Returns `None` when some pre-activation's intersection is empty: the
/// node's phase region admits no point consistent with the encoding's
/// base bounds, so the node is infeasible and can be pruned. (Both
/// operands carry the 1e-6 widening, so a genuine feasible region can
/// never produce an empty intersection through round-off.)
fn tighten_node_bounds(
    enc: &Encoding,
    flat_map: &[(usize, usize)],
    base: &[(f64, f64)],
    analysis: &PhasedAnalysis,
    decided: &[(usize, bool)],
) -> Option<Vec<(f64, f64)>> {
    let mut nb = base.to_vec();
    for (li, zl) in enc.z_vars.iter().enumerate() {
        for (j, zv) in zl.iter().enumerate() {
            let iv = analysis.bounds.pre[li][j].widened(1e-6);
            let (blo, bhi) = nb[zv.index()];
            let (lo, hi) = (blo.max(iv.lo()), bhi.min(iv.hi()));
            if lo > hi {
                return None;
            }
            nb[zv.index()] = (lo, hi);
        }
    }
    for (flat, yv) in enc.y_vars.iter().enumerate() {
        let Some(yv) = yv else { continue };
        // Flat -> (layer, neuron) via the prefix sums in flat_map.
        let (li, j) = flat_map[flat];
        let hi = analysis.bounds.pre[li][j].hi().max(0.0) + 1e-6;
        let (blo, bhi) = nb[yv.index()];
        nb[yv.index()] = (blo, bhi.min(hi));
    }
    for &(flat, v) in decided {
        if let Some(bin) = enc.relu_binaries[flat] {
            let b = if v { 1.0 } else { 0.0 };
            nb[bin.index()] = (b, b);
        }
    }
    Some(nb)
}

/// Phase decisions at a node: explicitly forced by the node plus those
/// implied by its propagated bounds, restricted to neurons that still
/// carry a binary in the encoding.
fn decided_phases(ctx: &SearchCtx, node: &Node, analysis: &PhasedAnalysis) -> Vec<(usize, bool)> {
    let mut decided: Vec<(usize, bool)> = Vec::new();
    let mut relu_cursor = 0usize;
    for (li, layer) in ctx.net.layers().iter().enumerate() {
        if layer.activation() != certnn_nn::activation::Activation::Relu {
            continue;
        }
        for j in 0..layer.outputs() {
            let flat = relu_cursor;
            relu_cursor += 1;
            if ctx.enc.relu_binaries[flat].is_none() {
                continue;
            }
            let iv = analysis.bounds.pre[li][j];
            let implied = if iv.is_nonnegative() {
                Some(true)
            } else if iv.is_nonpositive() {
                Some(false)
            } else {
                None
            };
            if let Some(v) = node.phases[flat].or(implied) {
                decided.push((flat, v));
            }
        }
    }
    decided
}

#[cfg(test)]
mod tests {
    use super::*;
    use certnn_linalg::Interval;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn unit_spec(n: usize) -> InputSpec {
        InputSpec::from_box(vec![Interval::new(-1.0, 1.0); n]).unwrap()
    }

    #[test]
    fn empty_z_bound_intersection_prunes_instead_of_widening() {
        // Regression: when a node's propagated z-bounds are disjoint from
        // the encoding's base bounds the region is provably empty — the
        // old code silently widened to the phase interval and kept
        // solving an LP over a region that does not exist.
        use crate::encoder::{encode, BoundMethod};
        use certnn_milp::VarId;
        let net = Network::relu_mlp(2, &[4], 1, 7).unwrap();
        let spec = unit_spec(2);
        let enc = encode(&net, &spec, BoundMethod::Symbolic).unwrap();
        let base: Vec<(f64, f64)> = (0..enc.milp.num_vars())
            .map(|i| enc.milp.bounds(VarId::from_index(i)))
            .collect();
        let flat_map: Vec<(usize, usize)> = net
            .layers()
            .iter()
            .enumerate()
            .filter(|(_, l)| l.activation() == certnn_nn::activation::Activation::Relu)
            .flat_map(|(li, l)| (0..l.outputs()).map(move |j| (li, j)))
            .collect();
        let obj = LinearObjective::output(0);
        let mut analysis =
            crate::bounds::analyze_with_phases(&net, spec.bounds(), &[], &obj).unwrap();

        // Consistent bounds tighten without pruning.
        let nb = tighten_node_bounds(&enc, &flat_map, &base, &analysis, &[]);
        assert!(nb.is_some(), "consistent bounds must not prune");

        // Force a z interval disjoint from the base bounds: the node
        // region is empty and the intersection must report it.
        analysis.bounds.pre[0][0] = Interval::new(1.0e6, 1.0e6 + 1.0);
        assert!(
            tighten_node_bounds(&enc, &flat_map, &base, &analysis, &[]).is_none(),
            "disjoint z-bounds prove infeasibility; widening is unsound speed loss"
        );
    }

    #[test]
    fn bab_matches_pure_milp_on_small_networks() {
        use crate::verifier::{Verifier, VerifierOptions};
        for seed in [5u64, 9, 21] {
            let net = Network::relu_mlp(3, &[8, 8], 2, seed).unwrap();
            let spec = unit_spec(3);
            let obj = LinearObjective::output(0);
            let milp_ref = Verifier::with_options(VerifierOptions {
                engine: crate::verifier::Engine::Milp,
                ..VerifierOptions::default()
            })
            .maximize(&net, &spec, &obj)
            .unwrap()
            .exact_max()
            .unwrap();
            let bab = bab_maximize(&net, &spec, &obj, &BabOptions::default()).unwrap();
            assert_eq!(bab.status, MilpStatus::Optimal);
            let got = bab.best_value.unwrap();
            assert!(
                (got - milp_ref).abs() < 1e-5,
                "seed {seed}: bab {got} vs milp {milp_ref}"
            );
            assert!(bab.upper_bound >= got - 1e-9);
        }
    }

    #[test]
    fn bab_witness_is_genuine_and_dominates_sampling() {
        let net = Network::relu_mlp(4, &[10, 10], 1, 3).unwrap();
        let spec = unit_spec(4);
        let obj = LinearObjective::output(0);
        let r = bab_maximize(&net, &spec, &obj, &BabOptions::default()).unwrap();
        assert_eq!(r.status, MilpStatus::Optimal);
        let max = r.best_value.unwrap();
        let w = r.witness.unwrap();
        assert!((net.forward(&w).unwrap()[0] - max).abs() < 1e-9);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..2000 {
            let x: Vector = (0..4).map(|_| rng.gen_range(-1.0..=1.0)).collect();
            assert!(net.forward(&x).unwrap()[0] <= max + 1e-6);
        }
    }

    #[test]
    fn parallel_workers_agree_with_serial() {
        // The tentpole contract: any thread count returns the same
        // optimum within abs_gap and reports its worker count.
        for seed in [3u64, 11] {
            let net = Network::relu_mlp(4, &[10, 10], 1, seed).unwrap();
            let spec = unit_spec(4);
            let obj = LinearObjective::output(0);
            let serial = bab_maximize(&net, &spec, &obj, &BabOptions::default()).unwrap();
            assert_eq!(serial.threads_used, 1);
            for threads in [2usize, 4] {
                let opts = BabOptions {
                    threads,
                    ..BabOptions::default()
                };
                let par = bab_maximize(&net, &spec, &obj, &opts).unwrap();
                assert_eq!(par.status, MilpStatus::Optimal);
                assert_eq!(par.threads_used, threads);
                assert!(par.nodes_per_sec >= 0.0);
                let (a, b) = (serial.best_value.unwrap(), par.best_value.unwrap());
                assert!(
                    (a - b).abs() <= 2.0 * opts.abs_gap,
                    "seed {seed}, {threads} threads: serial {a} vs parallel {b}"
                );
                assert!(par.upper_bound >= b - 1e-9);
                // Both proven bounds dominate both achieved values.
                assert!(par.upper_bound >= a - 2.0 * opts.abs_gap);
                assert!(serial.upper_bound >= b - 2.0 * opts.abs_gap);
            }
        }
    }

    #[test]
    fn zero_threads_resolves_to_available_parallelism() {
        let net = Network::relu_mlp(3, &[6], 1, 2).unwrap();
        let spec = unit_spec(3);
        let obj = LinearObjective::output(0);
        let opts = BabOptions {
            threads: 0,
            ..BabOptions::default()
        };
        let r = bab_maximize(&net, &spec, &obj, &opts).unwrap();
        assert_eq!(r.status, MilpStatus::Optimal);
        assert_eq!(r.threads_used, resolve_threads(0));
        assert!(r.threads_used >= 1);
    }

    #[test]
    fn bound_cutoff_and_target_short_circuit() {
        let net = Network::relu_mlp(4, &[10, 10], 1, 3).unwrap();
        let spec = unit_spec(4);
        let obj = LinearObjective::output(0);
        let exact = bab_maximize(&net, &spec, &obj, &BabOptions::default())
            .unwrap()
            .best_value
            .unwrap();
        // Cutoff far above the max: proven immediately.
        let opts = BabOptions {
            bound_cutoff: Some(exact + 100.0),
            ..BabOptions::default()
        };
        let r = bab_maximize(&net, &spec, &obj, &opts).unwrap();
        assert_eq!(r.status, MilpStatus::BoundCutoff);
        assert!(r.upper_bound < exact + 100.0);
        // Target below the max: a witness is found.
        let opts = BabOptions {
            target_objective: Some(exact - 0.05),
            ..BabOptions::default()
        };
        let r = bab_maximize(&net, &spec, &obj, &opts).unwrap();
        assert_eq!(r.status, MilpStatus::TargetReached);
        assert!(r.best_value.unwrap() >= exact - 0.05);
    }

    #[test]
    fn constraints_are_rejected() {
        use crate::property::{LinearConstraint, Relation};
        let net = Network::relu_mlp(2, &[4], 1, 0).unwrap();
        let spec = unit_spec(2).constrain(LinearConstraint {
            terms: vec![(0, 1.0)],
            relation: Relation::Le,
            rhs: 0.5,
        });
        let obj = LinearObjective::output(0);
        assert!(bab_maximize(&net, &spec, &obj, &BabOptions::default()).is_err());
    }

    #[test]
    fn degenerate_box_features_are_handled() {
        // Pinned features (degenerate intervals) are common in scenario
        // specs; the maximizer must respect them.
        let net = Network::relu_mlp(3, &[6], 1, 8).unwrap();
        let spec = InputSpec::from_box(vec![
            Interval::new(-1.0, 1.0),
            Interval::point(0.25),
            Interval::new(0.0, 0.5),
        ])
        .unwrap();
        let obj = LinearObjective::output(0);
        let r = bab_maximize(&net, &spec, &obj, &BabOptions::default()).unwrap();
        assert_eq!(r.status, MilpStatus::Optimal);
        let w = r.witness.unwrap();
        assert!((w[1] - 0.25).abs() < 1e-12);
        assert!(spec.contains(&w, 1e-9));
    }

    #[test]
    fn time_limit_reports_sound_bound() {
        let net = Network::relu_mlp(8, &[16, 16, 16], 1, 2).unwrap();
        let spec = unit_spec(8);
        let obj = LinearObjective::output(0);
        for threads in [1usize, 3] {
            let opts = BabOptions {
                time_limit: Some(Duration::from_millis(50)),
                threads,
                ..BabOptions::default()
            };
            let r = bab_maximize(&net, &spec, &obj, &opts).unwrap();
            // Whatever happened, the bound must dominate any sample.
            let mut rng = StdRng::seed_from_u64(4);
            for _ in 0..500 {
                let x: Vector = (0..8).map(|_| rng.gen_range(-1.0..=1.0)).collect();
                assert!(net.forward(&x).unwrap()[0] <= r.upper_bound + 1e-6);
            }
            if let Some(v) = r.best_value {
                assert!(v <= r.upper_bound + 1e-6);
            }
        }
    }
}
