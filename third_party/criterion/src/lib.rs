//! Offline drop-in subset of the
//! [`criterion`](https://crates.io/crates/criterion) bench harness.
//!
//! The build environment has no registry access, so the small surface the
//! workspace benches use is reimplemented here: [`Criterion`],
//! [`BenchmarkGroup`] with `sample_size`/`measurement_time`/
//! `bench_function`/`bench_with_input`, [`Bencher::iter`],
//! [`BenchmarkId`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Differences from upstream, by design: no statistical analysis, no
//! warm-up phase beyond one untimed iteration, no HTML reports. Each
//! benchmark runs `sample_size` timed iterations and prints the mean and
//! min wall time per iteration — enough to compare before/after when
//! optimising, which is all the workspace uses benches for.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimiser identity, so benchmarked results are not
/// dead-code-eliminated.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Bench harness entry point; one per `criterion_main!` binary.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            _parent: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Into<String>, f: F) {
        let mut group = self.benchmark_group("");
        group.bench_function(name, f);
        group.finish();
    }
}

/// A named set of benchmarks sharing sample-size settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; this stub always runs exactly
    /// `sample_size` iterations regardless of the requested budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        let mut b = Bencher {
            samples: self.sample_size,
            timings: Vec::new(),
        };
        f(&mut b);
        b.report(&self.name, &id.into());
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let mut b = Bencher {
            samples: self.sample_size,
            timings: Vec::new(),
        };
        f(&mut b, input);
        b.report(&self.name, &id.0);
    }

    /// Ends the group (upstream flushes reports here; the stub reports
    /// eagerly, so this is a no-op kept for call-site compatibility).
    pub fn finish(self) {}
}

/// Identifier for a parameterised benchmark.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Identifier `"{name}/{parameter}"`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self(format!("{}/{}", name.into(), parameter))
    }

    /// Identifier from the parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self(parameter.to_string())
    }
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    timings: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations (plus one
    /// untimed warm-up call).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        black_box(routine());
        self.timings.clear();
        self.timings.reserve(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.timings.push(start.elapsed());
        }
    }

    fn report(&self, group: &str, id: &str) {
        let label = if group.is_empty() {
            id.to_string()
        } else {
            format!("{group}/{id}")
        };
        if self.timings.is_empty() {
            println!("{label:<40} (no samples)");
            return;
        }
        let total: Duration = self.timings.iter().sum();
        let mean = total / self.timings.len() as u32;
        let min = self.timings.iter().min().copied().unwrap_or_default();
        println!(
            "{label:<40} mean {:>12.3?}  min {:>12.3?}  ({} samples)",
            mean,
            min,
            self.timings.len()
        );
    }
}

/// Declares a function that runs the listed benchmark functions with a
/// fresh [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` for a bench binary built with `harness = false` or the
/// default libtest passthrough (`--bench` is accepted and ignored).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // libtest-style flags (`--bench`, `--test`) arrive from cargo;
            // accept and ignore them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub");
        group.sample_size(3);
        group.measurement_time(Duration::from_secs(1));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_all_forms() {
        benches();
    }

    #[test]
    fn ids_format_like_upstream() {
        assert_eq!(BenchmarkId::new("a", 3).0, "a/3");
        assert_eq!(BenchmarkId::from_parameter(9).0, "9");
    }
}
