//! Offline drop-in subset of the [`rand`](https://crates.io/crates/rand)
//! 0.8 API.
//!
//! The build environment of this workspace has no network access to a
//! crates registry, so the handful of `rand` features the workspace uses
//! are reimplemented here behind the same paths and signatures:
//!
//! * [`rngs::StdRng`] — a seedable xoshiro256++ generator,
//! * [`Rng::gen_range`] / [`Rng::gen_bool`] / [`Rng::gen`],
//! * [`SeedableRng::seed_from_u64`],
//! * [`seq::SliceRandom::shuffle`],
//! * [`distributions::Uniform`] with [`distributions::Distribution`].
//!
//! The generator is a real, statistically solid PRNG (xoshiro256++ with a
//! SplitMix64 seed sequence), but its streams intentionally make no
//! attempt to match upstream `rand`: seeds produce *different* numbers
//! than the real crate. Everything in the workspace treats seeds as
//! opaque reproducibility handles, so only determinism matters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform `u64` source implemented by all generators.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        // IEEE-754 doubles hold 53 mantissa bits; use the top 53.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Deterministic construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Samples a value of a primitive type uniformly over its natural
    /// domain (`[0, 1)` for floats, the full range for integers).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait Standard {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value from `rng` inside the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        let v = self.start + rng.next_f64() * (self.end - self.start);
        // Floating rounding may land exactly on `end`; nudge back inside.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: inverted f64 range");
        lo + rng.next_f64() * (hi - lo)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: inverted integer range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

/// Ready-made generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded through a
    /// SplitMix64 sequence. Deterministic per seed, `Send`, no `unsafe`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0
                .wrapping_add(s3)
                .rotate_left(23)
                .wrapping_add(s0);
            let t = s1 << 17;
            let mut s2 = s2 ^ s0;
            let mut s3 = s3 ^ s1;
            let s1 = s1 ^ s2;
            let s0 = s0 ^ s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            self.s = [s0, s1, s2, s3];
            result
        }
    }
}

/// Slice utilities (`shuffle`).
pub mod seq {
    use super::{Rng, RngCore};

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

/// Distribution objects (`Uniform`).
pub mod distributions {
    use super::RngCore;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one value from `rng`.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over a closed `f64` interval.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Uniform {
        lo: f64,
        hi: f64,
    }

    impl Uniform {
        /// Uniform over `[lo, hi]`.
        pub fn new_inclusive(lo: f64, hi: f64) -> Self {
            assert!(lo <= hi, "Uniform::new_inclusive: inverted interval");
            Self { lo, hi }
        }
    }

    impl Distribution<f64> for Uniform {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            self.lo + rng.next_f64() * (self.hi - self.lo)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed_and_distinct_across_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<f64> = (0..8).map(|_| a.gen_range(0.0..1.0)).collect();
        let ys: Vec<f64> = (0..8).map(|_| b.gen_range(0.0..1.0)).collect();
        let zs: Vec<f64> = (0..8).map(|_| c.gen_range(0.0..1.0)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..2000 {
            let v = rng.gen_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&v));
            let w = rng.gen_range(-3i32..=4);
            assert!((-3..=4).contains(&w));
            let u = rng.gen_range(0usize..7);
            assert!(u < 7);
        }
        // Degenerate inclusive range is the identity.
        assert_eq!(rng.gen_range(0.25f64..=0.25), 0.25);
    }

    #[test]
    fn mean_of_uniform_is_centered() {
        let mut rng = StdRng::seed_from_u64(11);
        let dist = Uniform::new_inclusive(-1.0, 1.0);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| dist.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }
}
