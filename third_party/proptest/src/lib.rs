//! Offline drop-in subset of the
//! [`proptest`](https://crates.io/crates/proptest) API.
//!
//! The build environment has no registry access, so the property-testing
//! surface the workspace uses is reimplemented here: the [`proptest!`]
//! macro, [`Strategy`] with `prop_map`/`prop_flat_map`, integer/float
//! range strategies, tuple strategies, [`collection::vec`],
//! [`any`], `prop_assert*!` and [`prop_assume!`].
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports its generated inputs via the
//!   assertion message but is not minimised.
//! * **Fixed deterministic seeding.** Each `#[test]` derives its RNG seed
//!   from its own name, so failures reproduce exactly across runs.
//! * Rejection via [`prop_assume!`] retries the case (bounded by a
//!   20× attempt budget) instead of proptest's global rejection ledger.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Re-exports matching `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Namespace mirror of upstream's `prop` module path.
pub mod prop {
    /// Collection strategies (`prop::collection::vec`).
    pub mod collection {
        pub use crate::collection::vec;
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Why a generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was rejected by [`prop_assume!`]; the runner retries.
    Reject(String),
    /// An assertion failed; the runner panics with this message.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }

    /// Builds a rejection.
    pub fn reject(msg: String) -> Self {
        TestCaseError::Reject(msg)
    }
}

/// A generator of values for property tests.
///
/// Unlike upstream this is a plain generator — `generate` draws one value
/// from the strategy using the test's RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone, Copy)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone, Copy)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! numeric_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

numeric_range_strategy!(usize, u64, u32, u16, u8, i64, i32, i16, i8, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
);

/// Types with a canonical whole-domain strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// The strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;
    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Canonical whole-domain strategy for `T` (e.g. `any::<u64>()`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy over a primitive type's full domain.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyPrimitive<T> {
    _marker: std::marker::PhantomData<T>,
}

macro_rules! arbitrary_via_standard {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen::<$t>()
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive::default()
            }
        }
    )*};
}

arbitrary_via_standard!(bool, u64, f64);

/// Collection strategies.
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec`]: a fixed size or a (half-open or
    /// inclusive) range of sizes.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "vec size range is empty");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy generating `Vec`s of `element` with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Stable per-test seed derived from the test's name.
pub fn seed_for(name: &str) -> u64 {
    // FNV-1a over the name: deterministic across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Property-test entry point; see the crate docs for the differences from
/// upstream `proptest`.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($pat:pat_param in $strat:expr),* $(,)? ) $body:block )* ) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(
                $crate::seed_for(stringify!($name)),
            );
            let mut passed: u32 = 0;
            let mut attempts: u32 = 0;
            let budget = config.cases.saturating_mul(20).max(20);
            while passed < config.cases {
                attempts += 1;
                assert!(
                    attempts <= budget,
                    "proptest stub: too many rejected cases ({} attempts, {} passed)",
                    attempts,
                    passed
                );
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)*
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                match outcome {
                    Ok(()) => passed += 1,
                    Err($crate::TestCaseError::Reject(_)) => {}
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("proptest case {} failed: {}", attempts, msg)
                    }
                }
            }
        }
    )*};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs != rhs {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($a),
                stringify!($b),
                lhs,
                rhs
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs != rhs {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs == rhs {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($a),
                stringify!($b),
                lhs
            )));
        }
    }};
}

/// Rejects the current case (it is retried with fresh inputs) unless
/// `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(format!(
                "assumption failed: {}",
                stringify!($cond)
            )));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn halves() -> impl Strategy<Value = f64> {
        (-10i32..=10).prop_map(|v| v as f64 / 2.0)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_maps_stay_in_domain(
            x in 2usize..5,
            y in halves(),
            z in any::<u64>(),
            flag in any::<bool>(),
        ) {
            prop_assert!((2..5).contains(&x));
            prop_assert!((-5.0..=5.0).contains(&y), "y = {}", y);
            let _ = z;
            prop_assert!(usize::from(flag) <= 1);
        }

        #[test]
        fn vec_and_tuple_strategies_compose(
            v in prop::collection::vec((0i32..=6).prop_map(|n| n * 2), 3),
            (a, b) in (1usize..4, 0.0f64..=1.0),
        ) {
            prop_assert_eq!(v.len(), 3);
            for e in &v {
                prop_assert!(e % 2 == 0 && (0..=12).contains(e));
            }
            prop_assert!(a < 4 && (0.0..=1.0).contains(&b));
        }

        #[test]
        fn flat_map_threads_dependent_values(
            (lo, hi) in (0i32..10).prop_flat_map(|lo| (Just(lo), (lo + 1)..(lo + 5))),
        ) {
            prop_assert!(hi > lo);
        }

        #[test]
        fn assume_rejects_and_retries(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    #[test]
    fn seeds_differ_per_test_name() {
        assert_ne!(super::seed_for("a"), super::seed_for("b"));
        assert_eq!(super::seed_for("a"), super::seed_for("a"));
    }
}
